//! A queue-pair front-end binding the NVMe rings to the device model.
//!
//! BaM's mechanism is literally this object placed in GPU memory: GPU
//! threads build commands into the submission ring, ring the doorbell,
//! and poll the completion ring. [`QueuePair`] drives the ring protocol
//! end-to-end against an [`SsdDevice`], enforcing the queue-depth limit
//! that throttles thousands of simultaneously-faulting threads (the
//! back-pressure BaM's design section highlights).

use gmt_sim::trace::{TraceEvent, TraceSink};
use gmt_sim::Time;

use crate::queue::{Command, CompletionQueue, Opcode, QueueFull, SubmissionQueue};
use crate::SsdDevice;

/// An in-flight command awaiting completion delivery.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    done_at: Time,
    cid: u16,
}

/// A submission/completion ring pair bound to a device.
///
/// # Examples
///
/// ```
/// use gmt_sim::Time;
/// use gmt_ssd::qpair::QueuePair;
/// use gmt_ssd::queue::Opcode;
/// use gmt_ssd::{SsdConfig, SsdDevice};
///
/// let mut qp = QueuePair::new(SsdDevice::new(SsdConfig::default()), 32);
/// let cid = qp.submit(Time::ZERO, Opcode::Read, 0, 65_536)?;
/// let done = qp.poll_until(cid);
/// assert!(done > Time::ZERO);
/// # Ok::<(), gmt_ssd::queue::QueueFull>(())
/// ```
#[derive(Debug)]
pub struct QueuePair {
    device: SsdDevice,
    sq: SubmissionQueue,
    cq: CompletionQueue,
    in_flight: Vec<InFlight>,
    next_cid: u16,
    trace: TraceSink,
}

impl QueuePair {
    /// Binds fresh rings of `depth` slots to `device`.
    ///
    /// # Panics
    ///
    /// Panics if `depth < 2` (the NVMe minimum).
    pub fn new(device: SsdDevice, depth: usize) -> QueuePair {
        QueuePair {
            device,
            sq: SubmissionQueue::new(depth),
            cq: CompletionQueue::new(depth),
            in_flight: Vec::with_capacity(depth),
            next_cid: 0,
            trace: TraceSink::disabled(),
        }
    }

    /// Routes ring submissions/completions and the bound device's I/O
    /// into `trace` (the device is identified as device 0).
    pub fn attach_trace(&mut self, trace: &TraceSink) {
        self.trace = trace.clone();
        self.device.attach_trace(trace, 0);
    }

    /// Flushes pending device completion events into the trace (see
    /// [`SsdDevice::flush_trace`]).
    pub fn flush_trace(&mut self, now: Time) {
        self.device.flush_trace(now);
    }

    /// Commands submitted but not yet reaped.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Builds, enqueues, doorbells and dispatches one I/O command;
    /// returns its command id.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the ring already holds a full queue
    /// depth of un-reaped commands — the caller must poll completions
    /// first, exactly as a BaM thread would spin.
    pub fn submit(
        &mut self,
        now: Time,
        opcode: Opcode,
        offset: u64,
        bytes: u64,
    ) -> Result<u16, QueueFull> {
        if self.in_flight.len() >= self.sq.capacity() {
            return Err(QueueFull);
        }
        let block = self.device.config().block_bytes as u64;
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        let cmd = Command::io(cid, opcode, offset / block, bytes.div_ceil(block) as u32);
        self.sq.push(cmd)?;
        self.sq.ring_doorbell();
        // Controller side: consume the doorbelled command and start it.
        let fetched = self.sq.pop().expect("doorbelled command is visible");
        debug_assert_eq!(fetched.cid, cid);
        let (done_at, _entry) = self.device.submit(now, fetched);
        self.in_flight.push(InFlight { done_at, cid });
        self.trace.emit(
            now,
            TraceEvent::RingSubmit {
                cid,
                write: !matches!(opcode, Opcode::Read),
                queue_depth: self.in_flight.len() as u32,
            },
        );
        Ok(cid)
    }

    /// Delivers every completion with `done_at <= now` into the
    /// completion ring; returns how many were posted.
    pub fn deliver_completions(&mut self, now: Time) -> usize {
        let sq_head = self.sq.head();
        let mut posted = 0;
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].done_at <= now {
                let f = self.in_flight.swap_remove(i);
                self.cq.post(f.cid, 0, sq_head);
                self.trace.emit(
                    now,
                    TraceEvent::RingComplete {
                        cid: f.cid,
                        queue_depth: self.in_flight.len() as u32,
                    },
                );
                posted += 1;
            } else {
                i += 1;
            }
        }
        posted
    }

    /// Reaps the next visible completion entry, if any.
    pub fn poll(&mut self) -> Option<u16> {
        self.cq.poll().map(|e| e.cid)
    }

    /// Spins (in virtual time) until command `cid` completes; returns its
    /// completion time.
    ///
    /// # Panics
    ///
    /// Panics if `cid` is not in flight.
    pub fn poll_until(&mut self, cid: u16) -> Time {
        let target = self
            .in_flight
            .iter()
            .find(|f| f.cid == cid)
            .unwrap_or_else(|| panic!("command {cid} is not in flight"))
            .done_at;
        self.deliver_completions(target);
        // Drain the CQ; the requested cid is now visible among them.
        let mut found = false;
        while let Some(done_cid) = self.poll() {
            if done_cid == cid {
                found = true;
            }
        }
        assert!(found, "completion for {cid} must have been posted");
        target
    }

    /// Submits with back-pressure: when the ring is full, the caller
    /// (a GPU thread in BaM) spins until the earliest in-flight command
    /// completes, reaps it, and retries. Returns the command's completion
    /// time; the effective submission time reflects any spinning.
    ///
    /// # Panics
    ///
    /// Panics if the ring has fewer than 2 usable slots.
    pub fn submit_blocking(&mut self, now: Time, opcode: Opcode, offset: u64, bytes: u64) -> Time {
        let mut now = now;
        loop {
            match self.submit(now, opcode, offset, bytes) {
                Ok(cid) => {
                    let done = self
                        .in_flight
                        .iter()
                        .find(|f| f.cid == cid)
                        .expect("just submitted")
                        .done_at;
                    return done;
                }
                Err(QueueFull) => {
                    // Spin until the earliest in-flight command finishes.
                    let earliest = self
                        .in_flight
                        .iter()
                        .map(|f| f.done_at)
                        .min()
                        .expect("full ring has in-flight commands");
                    now = now.max(earliest);
                    self.deliver_completions(now);
                    while self.poll().is_some() {}
                }
            }
        }
    }

    /// Access to the underlying device (e.g. for statistics).
    pub fn device(&self) -> &SsdDevice {
        &self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SsdConfig;

    fn qp(depth: usize) -> QueuePair {
        QueuePair::new(SsdDevice::new(SsdConfig::default()), depth)
    }

    #[test]
    fn submit_poll_roundtrip() {
        let mut q = qp(8);
        let cid = q.submit(Time::ZERO, Opcode::Read, 0, 65_536).unwrap();
        assert_eq!(q.in_flight(), 1);
        let done = q.poll_until(cid);
        assert!(done > Time::ZERO);
        assert_eq!(q.in_flight(), 0);
        assert_eq!(q.device().stats().reads, 1);
    }

    #[test]
    fn queue_depth_back_pressure() {
        let mut q = qp(4); // 3 usable slots
        let mut cids = Vec::new();
        for i in 0..3u64 {
            cids.push(
                q.submit(Time::ZERO, Opcode::Read, i * 65_536, 65_536)
                    .unwrap(),
            );
        }
        assert_eq!(
            q.submit(Time::ZERO, Opcode::Read, 0, 65_536),
            Err(QueueFull)
        );
        // Reaping frees a slot.
        q.poll_until(cids[0]);
        assert!(q
            .submit(Time::ZERO, Opcode::Read, 3 * 65_536, 65_536)
            .is_ok());
    }

    #[test]
    fn completions_deliver_in_time_order_batches() {
        let mut q = qp(16);
        let mut dones = Vec::new();
        for i in 0..8u64 {
            let cid = q
                .submit(Time::ZERO, Opcode::Read, i * 65_536, 65_536)
                .unwrap();
            dones.push((cid, i));
        }
        // Nothing is visible before any completion time.
        assert_eq!(q.deliver_completions(Time::ZERO), 0);
        assert!(q.poll().is_none());
        // Everything is visible at the horizon.
        let horizon = Time::from_nanos(u64::MAX / 2);
        assert_eq!(q.deliver_completions(horizon), 8);
        let mut reaped = 0;
        while q.poll().is_some() {
            reaped += 1;
        }
        assert_eq!(reaped, 8);
    }

    #[test]
    fn writes_flow_through_the_same_rings() {
        let mut q = qp(8);
        let cid = q.submit(Time::ZERO, Opcode::Write, 65_536, 65_536).unwrap();
        q.poll_until(cid);
        assert_eq!(q.device().stats().writes, 1);
    }

    #[test]
    fn submit_blocking_spins_through_back_pressure() {
        let mut q = qp(4); // 3 usable slots
        let mut last = Time::ZERO;
        for i in 0..32u64 {
            last = last.max(q.submit_blocking(Time::ZERO, Opcode::Read, i * 65_536, 65_536));
        }
        assert_eq!(q.device().stats().reads, 32);
        // Back-pressure forces serialization beyond the ring depth: the
        // run must take longer than 3 fully-parallel reads.
        let mut free = qp(64);
        let mut free_last = Time::ZERO;
        for i in 0..32u64 {
            free_last =
                free_last.max(free.submit_blocking(Time::ZERO, Opcode::Read, i * 65_536, 65_536));
        }
        assert!(last >= free_last, "a deeper ring can only help");
    }

    #[test]
    fn cids_wrap_without_collision_in_flight() {
        let mut q = qp(4);
        for i in 0..1_000u64 {
            let cid = q
                .submit(Time::ZERO, Opcode::Read, (i % 64) * 65_536, 65_536)
                .unwrap();
            q.poll_until(cid);
        }
        assert_eq!(q.device().stats().reads, 1_000);
    }
}
