//! Striped multi-SSD arrays.
//!
//! BaM scales storage bandwidth by striping across several NVMe devices
//! (its evaluation goes up to ten); the GMT paper uses one 970 EVO Plus
//! but inherits the capability. [`SsdArray`] stripes the page address
//! space round-robin across identical devices so aggregate bandwidth
//! scales with the device count while per-command latency stays that of
//! one device.

use gmt_sim::Time;
use serde::{Deserialize, Serialize};

use crate::{SsdConfig, SsdDevice, SsdStats};

/// Striping configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Per-device calibration.
    pub device: SsdConfig,
    /// Number of identical devices.
    pub devices: usize,
    /// Stripe unit in bytes (defaults to one 64 KB page: consecutive
    /// pages land on consecutive devices).
    pub stripe_bytes: u64,
}

impl ArrayConfig {
    /// An array of `devices` default-calibrated SSDs striped at page
    /// granularity.
    pub fn new(devices: usize) -> ArrayConfig {
        ArrayConfig {
            device: SsdConfig::default(),
            devices,
            stripe_bytes: 64 * 1024,
        }
    }
}

/// A round-robin striped array of identical [`SsdDevice`]s.
///
/// # Examples
///
/// ```
/// use gmt_sim::Time;
/// use gmt_ssd::array::{ArrayConfig, SsdArray};
///
/// let mut array = SsdArray::new(ArrayConfig::new(4));
/// let done = array.read(Time::ZERO, 0, 64 * 1024);
/// assert!(done > Time::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct SsdArray {
    config: ArrayConfig,
    devices: Vec<SsdDevice>,
}

impl SsdArray {
    /// Builds the array.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero or `stripe_bytes` is zero.
    pub fn new(config: ArrayConfig) -> SsdArray {
        assert!(config.devices > 0, "array needs at least one device");
        assert!(config.stripe_bytes > 0, "stripe unit must be positive");
        SsdArray {
            devices: (0..config.devices)
                .map(|_| SsdDevice::new(config.device))
                .collect(),
            config,
        }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.devices.len()
    }

    /// Routes every device's submissions and completions into `trace`,
    /// numbering devices by their stripe position.
    pub fn attach_trace(&mut self, trace: &gmt_sim::trace::TraceSink) {
        for (i, d) in self.devices.iter_mut().enumerate() {
            d.attach_trace(trace, i as u32);
        }
    }

    /// Flushes pending completion events on every device (see
    /// [`SsdDevice::flush_trace`]).
    pub fn flush_trace(&mut self, now: Time) {
        for d in &mut self.devices {
            d.flush_trace(now);
        }
    }

    /// Which device serves byte `offset`.
    pub fn device_for(&self, offset: u64) -> usize {
        ((offset / self.config.stripe_bytes) % self.devices.len() as u64) as usize
    }

    /// Reads `bytes` at `offset` (must lie within one stripe unit);
    /// returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the request straddles a stripe boundary.
    pub fn read(&mut self, now: Time, offset: u64, bytes: u64) -> Time {
        let d = self.route(offset, bytes);
        self.devices[d].read(now, offset, bytes)
    }

    /// Writes `bytes` at `offset` (must lie within one stripe unit);
    /// returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the request straddles a stripe boundary.
    pub fn write(&mut self, now: Time, offset: u64, bytes: u64) -> Time {
        let d = self.route(offset, bytes);
        self.devices[d].write(now, offset, bytes)
    }

    /// Aggregate statistics across all devices.
    pub fn stats(&self) -> SsdStats {
        let mut total = SsdStats::default();
        for d in &self.devices {
            let s = d.stats();
            total.reads += s.reads;
            total.writes += s.writes;
            total.bytes_read += s.bytes_read;
            total.bytes_written += s.bytes_written;
        }
        total
    }

    fn route(&self, offset: u64, bytes: u64) -> usize {
        let stripe = self.config.stripe_bytes;
        assert!(
            offset / stripe == (offset + bytes - 1) / stripe,
            "request [{offset}, {}) straddles a stripe boundary",
            offset + bytes
        );
        self.device_for(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = 64 * 1024;

    #[test]
    fn consecutive_pages_hit_consecutive_devices() {
        let array = SsdArray::new(ArrayConfig::new(4));
        let devices: Vec<usize> = (0..8).map(|p| array.device_for(p * PAGE)).collect();
        assert_eq!(devices, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn bandwidth_scales_with_device_count() {
        let pages = 2_000u64;
        let time_for = |n: usize| {
            let mut array = SsdArray::new(ArrayConfig::new(n));
            let mut done = Time::ZERO;
            for p in 0..pages {
                done = done.max(array.read(Time::ZERO, p * PAGE, PAGE));
            }
            done.as_nanos() as f64
        };
        let one = time_for(1);
        let four = time_for(4);
        assert!(
            four < one / 3.0,
            "4 devices took {four} ns vs 1 device {one} ns"
        );
    }

    #[test]
    fn single_read_latency_matches_one_device() {
        let mut array = SsdArray::new(ArrayConfig::new(8));
        let mut single = SsdDevice::new(SsdConfig::default());
        let a = array.read(Time::ZERO, 0, PAGE);
        let b = single.read(Time::ZERO, 0, PAGE);
        assert_eq!(a, b);
    }

    #[test]
    fn stats_aggregate_across_devices() {
        let mut array = SsdArray::new(ArrayConfig::new(2));
        array.read(Time::ZERO, 0, PAGE);
        array.write(Time::ZERO, PAGE, PAGE);
        let s = array.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.total_bytes(), 2 * PAGE);
    }

    #[test]
    #[should_panic(expected = "straddles a stripe boundary")]
    fn straddling_request_rejected() {
        let mut array = SsdArray::new(ArrayConfig::new(2));
        array.read(Time::ZERO, PAGE / 2, PAGE);
    }
}
