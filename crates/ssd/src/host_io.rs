//! Host userspace I/O (the libnvm path).
//!
//! Tier-2 → Tier-3 write-backs are "not in the critical path of GPU
//! accesses" and use "conventional userspace I/O (using libnvm)"
//! (paper §2.3). Unlike the GPU-direct path, every command here costs a
//! host core some submission work and the number of I/O threads is
//! bounded — a second, milder version of the host-bottleneck the HMM
//! baseline exhibits, applied only to background traffic.

use gmt_sim::{Dur, ServerPool, Time};
use serde::{Deserialize, Serialize};

use crate::array::SsdArray;

/// Host I/O front-end parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostIoConfig {
    /// Host threads dedicated to background I/O submission.
    pub io_threads: usize,
    /// CPU cost per command (build + doorbell + completion reap).
    pub submit_cost: Dur,
}

impl Default for HostIoConfig {
    fn default() -> HostIoConfig {
        HostIoConfig {
            io_threads: 4,
            submit_cost: Dur::from_micros(4),
        }
    }
}

/// A bounded pool of host submission threads in front of an SSD array.
///
/// # Examples
///
/// ```
/// use gmt_sim::Time;
/// use gmt_ssd::array::{ArrayConfig, SsdArray};
/// use gmt_ssd::host_io::{HostIo, HostIoConfig};
///
/// let mut ssd = SsdArray::new(ArrayConfig::new(1));
/// let mut host = HostIo::new(HostIoConfig::default());
/// let done = host.write(Time::ZERO, &mut ssd, 0, 64 * 1024);
/// assert!(done > Time::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct HostIo {
    config: HostIoConfig,
    threads: ServerPool,
    commands: u64,
}

impl HostIo {
    /// Creates the front-end.
    ///
    /// # Panics
    ///
    /// Panics if `config.io_threads` is zero.
    pub fn new(config: HostIoConfig) -> HostIo {
        HostIo {
            threads: ServerPool::new(config.io_threads),
            commands: 0,
            config,
        }
    }

    /// The front-end's configuration.
    pub fn config(&self) -> &HostIoConfig {
        &self.config
    }

    /// Commands submitted so far.
    pub fn commands(&self) -> u64 {
        self.commands
    }

    /// Submits a write through a host thread; returns its completion time.
    pub fn write(&mut self, now: Time, ssd: &mut SsdArray, offset: u64, bytes: u64) -> Time {
        let submitted = self.threads.submit(now, self.config.submit_cost);
        self.commands += 1;
        ssd.write(submitted, offset, bytes)
    }

    /// Submits a read through a host thread; returns its completion time.
    pub fn read(&mut self, now: Time, ssd: &mut SsdArray, offset: u64, bytes: u64) -> Time {
        let submitted = self.threads.submit(now, self.config.submit_cost);
        self.commands += 1;
        ssd.read(submitted, offset, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayConfig;

    const PAGE: u64 = 64 * 1024;

    #[test]
    fn host_path_adds_submission_cost() {
        let mut ssd_direct = SsdArray::new(ArrayConfig::new(1));
        let mut ssd_host = SsdArray::new(ArrayConfig::new(1));
        let mut host = HostIo::new(HostIoConfig::default());
        let direct = ssd_direct.write(Time::ZERO, 0, PAGE);
        let via_host = host.write(Time::ZERO, &mut ssd_host, 0, PAGE);
        assert!(via_host > direct, "host submission must cost something");
        assert_eq!(host.commands(), 1);
    }

    #[test]
    fn bounded_threads_throttle_bursts() {
        let config = HostIoConfig {
            io_threads: 2,
            submit_cost: Dur::from_micros(10),
        };
        let mut ssd = SsdArray::new(ArrayConfig::new(8));
        let mut host = HostIo::new(config);
        // 8 simultaneous writes through 2 threads: submissions serialize
        // 4-deep, so the last starts no earlier than 4 x 10 us.
        let mut last_done = Time::ZERO;
        for i in 0..8u64 {
            last_done = last_done.max(host.write(Time::ZERO, &mut ssd, i * PAGE, PAGE));
        }
        assert!(last_done >= Time::from_nanos(40_000));
    }

    #[test]
    fn reads_also_flow_through_the_pool() {
        let mut ssd = SsdArray::new(ArrayConfig::new(1));
        let mut host = HostIo::new(HostIoConfig::default());
        host.read(Time::ZERO, &mut ssd, 0, PAGE);
        assert_eq!(ssd.stats().reads, 1);
        assert_eq!(host.commands(), 1);
    }
}
