//! Model-based property tests: the NVMe ring-buffer protocol checked
//! against a plain `VecDeque` reference model under arbitrary
//! producer/consumer interleavings.

use std::collections::VecDeque;

use gmt_ssd::queue::{Command, CompletionQueue, Opcode, SubmissionQueue};
use proptest::prelude::*;

proptest! {
    #[test]
    fn submission_queue_matches_reference_model(
        slots in 2usize..32,
        ops in proptest::collection::vec(any::<bool>(), 1..400),
    ) {
        let mut sq = SubmissionQueue::new(slots);
        let mut model: VecDeque<u16> = VecDeque::new();
        let mut next_cid = 0u16;
        for push in ops {
            if push {
                let cmd = Command::io(next_cid, Opcode::Read, 0, 1);
                match sq.push(cmd) {
                    Ok(()) => {
                        sq.ring_doorbell();
                        model.push_back(next_cid);
                        next_cid = next_cid.wrapping_add(1);
                    }
                    Err(_) => {
                        prop_assert_eq!(model.len(), slots - 1, "full only at capacity");
                    }
                }
            } else {
                let popped = sq.pop().map(|c| c.cid);
                prop_assert_eq!(popped, model.pop_front(), "FIFO order must hold");
            }
            prop_assert_eq!(sq.len(), model.len());
            prop_assert_eq!(sq.is_empty(), model.is_empty());
        }
    }

    #[test]
    fn completion_queue_delivers_in_order_across_wraps(
        slots in 2usize..16,
        batches in proptest::collection::vec(1usize..4, 1..64),
    ) {
        // Post at most slots-1 entries per batch and reap them all before
        // the next batch (the qpair discipline), across many wraps.
        let mut cq = CompletionQueue::new(slots);
        let mut next = 0u16;
        for batch in batches {
            let n = batch.min(slots - 1);
            for _ in 0..n {
                cq.post(next, 0, 0);
                next = next.wrapping_add(1);
            }
            let mut expected = next.wrapping_sub(n as u16);
            for _ in 0..n {
                let e = cq.poll().expect("posted entry visible");
                prop_assert_eq!(e.cid, expected);
                expected = expected.wrapping_add(1);
            }
            prop_assert!(cq.poll().is_none(), "no phantom completions");
        }
    }
}
