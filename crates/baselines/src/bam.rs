//! BaM: GPU-initiated on-demand storage access, 2 tiers (GPU ⇄ SSD).

use gmt_core::{GmtConfig, TieringMetrics};
use gmt_gpu::MemoryBackend;
use gmt_mem::{ClockList, PageTable, TierGeometry, WarpAccess};
use gmt_sim::trace::{TierTag, TraceEvent, TraceSink};
use gmt_sim::Time;
use gmt_ssd::array::{ArrayConfig, SsdArray};
use gmt_ssd::qpair::QueuePair;
use gmt_ssd::queue::Opcode;
use gmt_ssd::{SsdConfig, SsdDevice};
use serde::{Deserialize, Serialize};

/// Configuration of the BaM baseline.
///
/// BaM has no Tier-2, so only the Tier-1 capacity and the SSD calibration
/// matter; the [`TierGeometry`]'s Tier-2 field is ignored (kept so the same
/// geometry drives paired GMT/BaM runs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BamConfig {
    /// Tier capacities (Tier-2 ignored).
    pub geometry: TierGeometry,
    /// SSD calibration.
    pub ssd: SsdConfig,
    /// Number of identical SSDs striped at page granularity (BaM scales
    /// to arrays of ten in its own evaluation).
    pub ssd_devices: usize,
    /// NVMe queue depth per queue pair. BaM's GPU-resident rings throttle
    /// submission when full (threads spin); 0 disables the ring model and
    /// issues directly against the device array.
    pub queue_depth: usize,
}

impl BamConfig {
    /// BaM with the default SSD on the given capacities.
    pub fn new(geometry: TierGeometry) -> BamConfig {
        BamConfig {
            geometry,
            ssd: SsdConfig::default(),
            ssd_devices: 1,
            queue_depth: 1024,
        }
    }

    /// Same configuration striped over `devices` SSDs.
    pub fn with_devices(mut self, devices: usize) -> BamConfig {
        self.ssd_devices = devices;
        self
    }
}

impl From<GmtConfig> for BamConfig {
    /// Extracts the parameters BaM shares with a GMT configuration, so a
    /// paired baseline run uses the identical device models.
    fn from(config: GmtConfig) -> BamConfig {
        BamConfig {
            geometry: config.geometry,
            ssd: config.ssd,
            ssd_devices: config.ssd_devices,
            queue_depth: 1024,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BamMeta {
    resident: bool,
    dirty: bool,
    ready_at: Time,
}

impl Default for BamMeta {
    fn default() -> BamMeta {
        BamMeta {
            resident: false,
            dirty: false,
            ready_at: Time::ZERO,
        }
    }
}

/// The BaM runtime (Qureshi et al., ASPLOS 2023), re-implemented on the
/// simulated substrate.
///
/// GPU threads submit NVMe commands directly: a Tier-1 miss is one SSD
/// read; a dirty Tier-1 victim is one SSD write; host memory never holds
/// pages.
///
/// # Examples
///
/// ```
/// use gmt_baselines::{Bam, BamConfig};
/// use gmt_gpu::{Executor, ExecutorConfig};
/// use gmt_mem::{PageId, TierGeometry, WarpAccess};
///
/// let bam = Bam::new(BamConfig::new(TierGeometry::from_tier1(16, 4.0, 2.0)));
/// let trace = (0..160u64).map(|p| WarpAccess::read(PageId(p)));
/// let out = Executor::new(ExecutorConfig::default()).run(bam, trace);
/// assert_eq!(out.backend.metrics().ssd_reads, 160);
/// ```
#[derive(Debug)]
pub struct Bam {
    config: BamConfig,
    clock: ClockList,
    table: PageTable<BamMeta>,
    ssd: BamStorage,
    metrics: TieringMetrics,
    /// BaM has no coalesced-transaction counter of its own; for tracing,
    /// one tick per distinct page touch mirrors GMT's convention.
    vt: u64,
    trace: TraceSink,
}

/// BaM's storage back-end: NVMe rings when a queue depth is configured
/// (single-device only — rings belong to one controller), a striped array
/// otherwise.
#[derive(Debug)]
enum BamStorage {
    Rings(Box<QueuePair>),
    Array(SsdArray),
}

impl BamStorage {
    fn read(&mut self, now: gmt_sim::Time, offset: u64, bytes: u64) -> gmt_sim::Time {
        match self {
            BamStorage::Rings(qp) => qp.submit_blocking(now, Opcode::Read, offset, bytes),
            BamStorage::Array(array) => array.read(now, offset, bytes),
        }
    }

    fn write(&mut self, now: gmt_sim::Time, offset: u64, bytes: u64) -> gmt_sim::Time {
        match self {
            BamStorage::Rings(qp) => qp.submit_blocking(now, Opcode::Write, offset, bytes),
            BamStorage::Array(array) => array.write(now, offset, bytes),
        }
    }

    fn stats(&self) -> gmt_ssd::SsdStats {
        match self {
            BamStorage::Rings(qp) => qp.device().stats(),
            BamStorage::Array(array) => array.stats(),
        }
    }
}

impl Bam {
    /// Builds the baseline from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's Tier-1 is empty.
    pub fn new(config: BamConfig) -> Bam {
        Bam {
            clock: ClockList::new(config.geometry.tier1_pages),
            table: PageTable::new(config.geometry.total_pages),
            ssd: if config.queue_depth >= 2 && config.ssd_devices <= 1 {
                BamStorage::Rings(Box::new(QueuePair::new(
                    SsdDevice::new(config.ssd),
                    config.queue_depth,
                )))
            } else {
                BamStorage::Array(SsdArray::new(ArrayConfig {
                    device: config.ssd,
                    devices: config.ssd_devices.max(1),
                    stripe_bytes: config.geometry.page_bytes,
                }))
            },
            metrics: TieringMetrics::default(),
            vt: 0,
            trace: TraceSink::disabled(),
            config,
        }
    }

    /// Turns on decision tracing into a fresh ring of `capacity` records,
    /// wiring the storage back-end (rings or array) into it. Returns a
    /// handle to the shared sink.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_tracing(&mut self, capacity: usize) -> TraceSink {
        let sink = TraceSink::bounded(capacity);
        self.trace = sink.clone();
        match &mut self.ssd {
            BamStorage::Rings(qp) => qp.attach_trace(&sink),
            BamStorage::Array(array) => array.attach_trace(&sink),
        }
        sink
    }

    /// The baseline's trace sink (disabled unless
    /// [`Bam::enable_tracing`] was called).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The baseline's configuration.
    pub fn config(&self) -> &BamConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn metrics(&self) -> TieringMetrics {
        self.metrics
    }

    /// The SSD device's own statistics.
    pub fn ssd_stats(&self) -> gmt_ssd::SsdStats {
        self.ssd.stats()
    }

    fn page_bytes(&self) -> u64 {
        self.config.geometry.page_bytes
    }

    fn evict_one(&mut self, now: Time) -> Time {
        let victim = self.clock.evict_candidate();
        self.metrics.t1_evictions += 1;
        let bytes = self.page_bytes();
        let offset = victim.0 * bytes;
        let meta = self.table.get_mut(victim);
        meta.resident = false;
        let dirty = std::mem::take(&mut meta.dirty);
        self.trace.emit(
            now,
            TraceEvent::Eviction {
                page: victim.0,
                predicted: None,
                target: TierTag::Ssd,
                dirty,
            },
        );
        if dirty {
            self.metrics.ssd_writes += 1;
            self.trace
                .emit(now, TraceEvent::SsdWriteBack { page: victim.0 });
            self.ssd.write(now, offset, bytes)
        } else {
            self.metrics.discards += 1;
            self.trace
                .emit(now, TraceEvent::EvictDiscard { page: victim.0 });
            now
        }
    }
}

impl MemoryBackend for Bam {
    fn access(&mut self, now: Time, access: &WarpAccess) -> Time {
        self.metrics.accesses += 1;
        let mut ready = now;
        for page in access.pages.iter() {
            assert!(
                page.index() < self.table.len(),
                "page {page} outside the configured address space"
            );
            self.vt += 1;
            self.trace.set_vt(self.vt);
            let meta = self.table.get(page);
            if meta.resident {
                ready = ready.max(meta.ready_at);
                self.clock.touch(page);
                self.metrics.t1_hits += 1;
                self.trace.emit(now, TraceEvent::Tier1Hit { page: page.0 });
            } else {
                self.metrics.t1_misses += 1;
                self.trace.emit(
                    now,
                    TraceEvent::Tier1Miss {
                        page: page.0,
                        resident: TierTag::Ssd,
                    },
                );
                if self.clock.is_full() {
                    let done = self.evict_one(now);
                    ready = ready.max(done);
                }
                self.metrics.ssd_reads += 1;
                let bytes = self.page_bytes();
                let done = self.ssd.read(now, page.0 * bytes, bytes);
                if self.trace.is_enabled() {
                    self.trace.emit(
                        now,
                        TraceEvent::Tier1Fill {
                            page: page.0,
                            source: TierTag::Ssd,
                            ready_ns: done.as_nanos(),
                        },
                    );
                }
                self.clock.insert(page);
                let meta = self.table.get_mut(page);
                meta.resident = true;
                meta.ready_at = done;
                ready = ready.max(done);
            }
            if access.write {
                self.table.get_mut(page).dirty = true;
            }
        }
        ready
    }

    fn finish(&mut self, now: Time) -> Time {
        match &mut self.ssd {
            BamStorage::Rings(qp) => qp.flush_trace(now),
            BamStorage::Array(array) => array.flush_trace(now),
        }
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_mem::PageId;

    fn tiny() -> Bam {
        Bam::new(BamConfig::new(TierGeometry::from_tier1(4, 4.0, 2.0)))
    }

    fn read(bam: &mut Bam, now: Time, page: u64) -> Time {
        bam.access(now, &WarpAccess::read(PageId(page)))
    }

    #[test]
    fn miss_then_hit() {
        let mut bam = tiny();
        let t1 = read(&mut bam, Time::ZERO, 0);
        assert!(t1 > Time::ZERO);
        let t2 = read(&mut bam, t1, 0);
        assert_eq!(t2, t1);
        let m = bam.metrics();
        assert_eq!((m.t1_hits, m.t1_misses, m.ssd_reads), (1, 1, 1));
    }

    #[test]
    fn clean_evictions_are_free() {
        let mut bam = tiny();
        let mut now = Time::ZERO;
        for p in 0..12 {
            now = read(&mut bam, now, p);
        }
        let m = bam.metrics();
        assert_eq!(m.t1_evictions, 8);
        assert_eq!(m.discards, 8);
        assert_eq!(m.ssd_writes, 0);
    }

    #[test]
    fn dirty_evictions_write_back() {
        let mut bam = tiny();
        let mut now = Time::ZERO;
        for p in 0..4 {
            now = bam.access(now, &WarpAccess::write(PageId(p)));
        }
        for p in 4..8 {
            now = read(&mut bam, now, p);
        }
        assert_eq!(bam.metrics().ssd_writes, 4);
    }

    #[test]
    fn no_tier2_counters_ever_move() {
        let mut bam = tiny();
        let mut now = Time::ZERO;
        for p in 0..40 {
            now = read(&mut bam, now, p % 13);
        }
        let m = bam.metrics();
        assert_eq!(m.t2_hits, 0);
        assert_eq!(m.t2_placements, 0);
        assert_eq!(m.wasteful_lookups, 0);
    }

    #[test]
    fn config_from_gmt_shares_devices() {
        let gmt_config = GmtConfig::new(TierGeometry::from_tier1(8, 4.0, 2.0));
        let bam_config: BamConfig = gmt_config.into();
        assert_eq!(bam_config.geometry, gmt_config.geometry);
        assert_eq!(bam_config.ssd, gmt_config.ssd);
    }
}
