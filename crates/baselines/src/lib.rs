//! The paper's two comparison systems, re-implemented on the same
//! simulated substrate as GMT:
//!
//! * [`Bam`] — the state-of-the-art *GPU-orchestrated 2-tier* hierarchy
//!   (GPU memory ⇄ SSD). Clock replacement in GPU memory; misses issue
//!   GPU-direct NVMe reads; dirty victims are written back to the SSD;
//!   host memory is bypassed entirely. This is the baseline every figure
//!   normalizes against.
//! * [`Hmm`] — Linux Heterogeneous Memory Management: a *CPU-orchestrated
//!   3-tier* hierarchy. Every GPU fault is serviced by host software (a
//!   serialized fault-buffer drain plus a bounded pool of handler cores)
//!   through the host page cache, with `cudaMemcpy`-style DMA migrations.
//!   Its bottleneck is exactly the one the paper identifies: host cores
//!   cannot match the demand throughput of thousands of GPU warps.
//!
//! Both implement [`gmt_gpu::MemoryBackend`] and reuse
//! [`gmt_core::TieringMetrics`], so every run is directly comparable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bam;
mod hmm;

pub use bam::{Bam, BamConfig};
pub use hmm::{Hmm, HmmConfig};
