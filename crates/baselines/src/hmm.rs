//! HMM: CPU-orchestrated 3-tier memory management (UVM + host page cache).

use gmt_core::{GmtConfig, TieringMetrics};
use gmt_gpu::MemoryBackend;
use gmt_mem::{ClockList, FifoCache, PageId, PageTable, Tier, TierGeometry, WarpAccess};
use gmt_sim::trace::{TierTag, TraceEvent, TraceSink};
use gmt_sim::{Dur, FifoServer, Link, ServerPool, Time};
use gmt_ssd::{SsdConfig, SsdDevice};
use serde::{Deserialize, Serialize};

/// Calibration of the HMM baseline.
///
/// The defaults model Linux HMM/UVM on the paper's platform: GPU faults
/// are delivered through a single fault buffer drained by the driver
/// (serialized), then serviced by a bounded pool of host cores, with
/// `cudaMemcpy`-style DMA migrations over PCIe and a host page cache as
/// Tier-2. The serialized drain is the throughput ceiling — the property
/// the paper's §3.6 comparison hinges on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HmmConfig {
    /// Tier capacities (Tier-2 is the host page cache).
    pub geometry: TierGeometry,
    /// SSD calibration (accessed through the host block layer).
    pub ssd: SsdConfig,
    /// Serialized fault-buffer drain + replay cost per fault.
    pub fault_drain_cost: Dur,
    /// Faults the driver batches per drain pass (UVM processes the fault
    /// buffer in batches). The drain cost is amortized over the batch:
    /// effective per-fault cost is `fault_drain_cost / fault_batch`.
    /// Default 1 (no batching) matches the conservative baseline; larger
    /// values model an optimistically batched driver.
    pub fault_batch: u32,
    /// Host cores servicing faults concurrently.
    pub handler_cores: usize,
    /// CPU work per fault on a handler core (page-table walk, mapping
    /// updates, TLB shootdown amortized).
    pub handler_cost: Dur,
    /// DMA migration bandwidth over PCIe, bytes/second.
    pub dma_bytes_per_sec: f64,
    /// Per-migration DMA engine gap.
    pub dma_gap: Dur,
    /// Pages migrated per fault (UVM's density prefetcher grows
    /// migrations from 64 KB toward 2 MB; 1 disables chunking). The
    /// chunk's extra pages are pulled from wherever they live and mapped
    /// alongside the faulting page.
    pub migration_chunk_pages: usize,
}

impl HmmConfig {
    /// HMM with default calibration on the given capacities.
    pub fn new(geometry: TierGeometry) -> HmmConfig {
        HmmConfig {
            geometry,
            ssd: SsdConfig::default(),
            fault_drain_cost: Dur::from_micros(60),
            fault_batch: 1,
            handler_cores: 16,
            handler_cost: Dur::from_micros(25),
            dma_bytes_per_sec: 12.8e9,
            dma_gap: Dur::from_micros(3),
            migration_chunk_pages: 1,
        }
    }
}

impl From<GmtConfig> for HmmConfig {
    fn from(config: GmtConfig) -> HmmConfig {
        HmmConfig {
            ssd: config.ssd,
            ..HmmConfig::new(config.geometry)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct HmmMeta {
    tier: Tier,
    dirty: bool,
    ready_at: Time,
}

impl Default for HmmMeta {
    fn default() -> HmmMeta {
        HmmMeta {
            tier: Tier::Ssd,
            dirty: false,
            ready_at: Time::ZERO,
        }
    }
}

/// The HMM baseline: a CPU-orchestrated 3-tier hierarchy.
///
/// On a GPU-memory miss the faulting warp stalls through: fault-buffer
/// drain (serialized) → handler core (pooled) → page-cache lookup →
/// (SSD read on a cache miss) → DMA migration to the GPU. Tier-1 victims
/// are always migrated down into the page cache (UVM semantics: the host
/// is home), whose own FIFO spills dirty pages to the SSD.
///
/// # Examples
///
/// ```
/// use gmt_baselines::{Hmm, HmmConfig};
/// use gmt_gpu::{Executor, ExecutorConfig};
/// use gmt_mem::{PageId, TierGeometry, WarpAccess};
///
/// let hmm = Hmm::new(HmmConfig::new(TierGeometry::from_tier1(16, 4.0, 2.0)));
/// let trace = (0..160u64).map(|p| WarpAccess::read(PageId(p)));
/// let out = Executor::new(ExecutorConfig::default()).run(hmm, trace);
/// assert!(out.backend.metrics().ssd_reads > 0);
/// ```
#[derive(Debug)]
pub struct Hmm {
    config: HmmConfig,
    clock: ClockList,
    page_cache: FifoCache,
    table: PageTable<HmmMeta>,
    fault_drain: FifoServer,
    handlers: ServerPool,
    dma: Link,
    ssd: SsdDevice,
    metrics: TieringMetrics,
    /// HMM has no coalesced-transaction counter of its own; for tracing,
    /// one tick per distinct page touch mirrors GMT's convention.
    vt: u64,
    trace: TraceSink,
}

impl Hmm {
    /// Builds the baseline from `config`.
    ///
    /// # Panics
    ///
    /// Panics if a capacity or pool size is zero.
    pub fn new(config: HmmConfig) -> Hmm {
        Hmm {
            clock: ClockList::new(config.geometry.tier1_pages),
            page_cache: FifoCache::new(config.geometry.tier2_pages),
            table: PageTable::new(config.geometry.total_pages),
            fault_drain: FifoServer::new(),
            handlers: ServerPool::new(config.handler_cores),
            dma: Link::new(config.dma_bytes_per_sec, Dur::from_micros(1)),
            ssd: SsdDevice::new(config.ssd),
            metrics: TieringMetrics::default(),
            vt: 0,
            trace: TraceSink::disabled(),
            config,
        }
    }

    /// Turns on decision tracing into a fresh ring of `capacity` records,
    /// wiring the SSD device into it. Returns a handle to the shared sink.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_tracing(&mut self, capacity: usize) -> TraceSink {
        let sink = TraceSink::bounded(capacity);
        self.trace = sink.clone();
        self.ssd.attach_trace(&sink, 0);
        sink
    }

    /// The baseline's trace sink (disabled unless
    /// [`Hmm::enable_tracing`] was called).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The baseline's configuration.
    pub fn config(&self) -> &HmmConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn metrics(&self) -> TieringMetrics {
        self.metrics
    }

    /// The SSD device's statistics.
    pub fn ssd_stats(&self) -> gmt_ssd::SsdStats {
        self.ssd.stats()
    }

    /// Pages currently held by the host page cache.
    pub fn page_cache_occupancy(&self) -> usize {
        self.page_cache.len()
    }

    fn page_bytes(&self) -> u64 {
        self.config.geometry.page_bytes
    }

    /// Evicts one Tier-1 page into the host page cache (host software does
    /// the migration; the faulting warp is gated by it because the same
    /// handler performs both halves of the fault).
    fn evict_one(&mut self, now: Time) -> Time {
        let victim = self.clock.evict_candidate();
        self.metrics.t1_evictions += 1;
        self.metrics.t2_placements += 1;
        if self.trace.is_enabled() {
            // UVM has no tier predictor: the host is always home.
            let dirty = self.table.get(victim).dirty;
            self.trace.emit(
                now,
                TraceEvent::Eviction {
                    page: victim.0,
                    predicted: None,
                    target: TierTag::Host,
                    dirty,
                },
            );
            self.trace.emit(
                now,
                TraceEvent::Tier2Place {
                    page: victim.0,
                    dirty,
                },
            );
        }
        let bytes = self.page_bytes();
        // Migrate device -> host over the DMA engine.
        let dma_done = self.dma.transfer(now + self.config.dma_gap, bytes);
        if let Some(spilled) = self.page_cache.insert_evicting(victim) {
            let meta = self.table.get_mut(spilled);
            meta.tier = Tier::Ssd;
            if std::mem::take(&mut meta.dirty) {
                self.metrics.t2_writebacks += 1;
                self.trace.emit(
                    now,
                    TraceEvent::Tier2Spill {
                        page: spilled.0,
                        dirty: true,
                    },
                );
                self.ssd.write(now, spilled.0 * bytes, bytes);
            } else {
                self.metrics.t2_drops += 1;
                self.trace.emit(
                    now,
                    TraceEvent::Tier2Spill {
                        page: spilled.0,
                        dirty: false,
                    },
                );
            }
        }
        let meta = self.table.get_mut(victim);
        meta.tier = Tier::Host;
        meta.ready_at = dma_done;
        dma_done
    }

    /// Services one fault through the host software stack; returns when
    /// the page is mapped on the GPU.
    fn fault(&mut self, now: Time, page: PageId) -> Time {
        // 1. Serialized fault-buffer drain (the driver's single consumer);
        // batching amortizes the per-pass cost across faults.
        let per_fault = self.config.fault_drain_cost / self.config.fault_batch.max(1) as u64;
        let drained = self.fault_drain.submit(now, per_fault);
        // 2. A handler core picks the fault up.
        let handled = self.handlers.submit(drained, self.config.handler_cost);
        // 3. Make room on the GPU.
        let mut ready = handled;
        if self.clock.is_full() {
            ready = ready.max(self.evict_one(handled));
        }
        // 4. Source the page.
        let bytes = self.page_bytes();
        let (in_host, source) = match self.table.get(page).tier {
            Tier::Host => {
                self.metrics.t2_hits += 1;
                self.trace.emit(now, TraceEvent::Tier2Hit { page: page.0 });
                self.page_cache.remove(page);
                (handled.max(self.table.get(page).ready_at), TierTag::Host)
            }
            _ => {
                self.metrics.wasteful_lookups += 1;
                self.metrics.ssd_reads += 1;
                self.trace
                    .emit(now, TraceEvent::WastefulLookup { page: page.0 });
                (self.ssd.read(handled, page.0 * bytes, bytes), TierTag::Ssd)
            }
        };
        // 5. Migrate host -> device.
        let dma_done = self.dma.transfer(in_host + self.config.dma_gap, bytes);
        if self.trace.is_enabled() {
            self.trace.emit(
                now,
                TraceEvent::Tier1Fill {
                    page: page.0,
                    source,
                    ready_ns: dma_done.as_nanos(),
                },
            );
        }
        self.clock.insert(page);
        let meta = self.table.get_mut(page);
        meta.tier = Tier::Gpu;
        meta.ready_at = dma_done;
        // 6. UVM chunking: migrate the following pages of the chunk too
        // (off the faulting warp's critical path, but using the same
        // handler's DMA stream).
        for delta in 1..self.config.migration_chunk_pages as u64 {
            let next = PageId(page.0 + delta);
            if next.index() >= self.table.len() || self.table.get(next).tier != Tier::Ssd {
                continue;
            }
            if self.clock.is_full() {
                self.evict_one(handled);
            }
            let fetched = self.ssd.read(handled, next.0 * bytes, bytes);
            let chunk_done = self.dma.transfer(fetched + self.config.dma_gap, bytes);
            self.metrics.ssd_reads += 1;
            self.metrics.prefetches += 1;
            if self.trace.is_enabled() {
                self.trace.emit(now, TraceEvent::Prefetch { page: next.0 });
                // Unlike GMT's prefetcher, UVM's chunk reads count in
                // `ssd_reads`, so they get a fill event too.
                self.trace.emit(
                    now,
                    TraceEvent::Tier1Fill {
                        page: next.0,
                        source: TierTag::Ssd,
                        ready_ns: chunk_done.as_nanos(),
                    },
                );
            }
            self.clock.insert(next);
            let meta = self.table.get_mut(next);
            meta.tier = Tier::Gpu;
            meta.ready_at = chunk_done;
        }
        ready.max(dma_done)
    }
}

impl MemoryBackend for Hmm {
    fn access(&mut self, now: Time, access: &WarpAccess) -> Time {
        self.metrics.accesses += 1;
        let mut ready = now;
        for page in access.pages.iter() {
            assert!(
                page.index() < self.table.len(),
                "page {page} outside the configured address space"
            );
            self.vt += 1;
            self.trace.set_vt(self.vt);
            let meta = self.table.get(page);
            if meta.tier == Tier::Gpu {
                ready = ready.max(meta.ready_at);
                self.clock.touch(page);
                self.metrics.t1_hits += 1;
                self.trace.emit(now, TraceEvent::Tier1Hit { page: page.0 });
            } else {
                self.metrics.t1_misses += 1;
                if self.trace.is_enabled() {
                    let resident = if meta.tier == Tier::Host {
                        TierTag::Host
                    } else {
                        TierTag::Ssd
                    };
                    self.trace.emit(
                        now,
                        TraceEvent::Tier1Miss {
                            page: page.0,
                            resident,
                        },
                    );
                }
                let done = self.fault(now, page);
                ready = ready.max(done);
            }
            if access.write {
                self.table.get_mut(page).dirty = true;
            }
        }
        ready
    }

    fn finish(&mut self, now: Time) -> Time {
        self.ssd.flush_trace(now);
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hmm {
        Hmm::new(HmmConfig::new(TierGeometry::from_tier1(4, 4.0, 2.0)))
    }

    fn read(hmm: &mut Hmm, now: Time, page: u64) -> Time {
        hmm.access(now, &WarpAccess::read(PageId(page)))
    }

    #[test]
    fn fault_cost_includes_host_stack() {
        let mut hmm = tiny();
        let done = read(&mut hmm, Time::ZERO, 0);
        let cfg = *hmm.config();
        let floor = cfg.fault_drain_cost + cfg.handler_cost;
        assert!(
            done.since(Time::ZERO) > floor,
            "fault must pay drain + handler + I/O, got {}",
            done.since(Time::ZERO)
        );
    }

    #[test]
    fn victims_always_go_to_page_cache() {
        let mut hmm = tiny();
        let mut now = Time::ZERO;
        for p in 0..10 {
            now = read(&mut hmm, now, p);
        }
        let m = hmm.metrics();
        assert_eq!(m.t1_evictions, 6);
        assert_eq!(m.t2_placements, 6);
        assert_eq!(hmm.page_cache_occupancy(), 6);
    }

    #[test]
    fn page_cache_hit_skips_ssd() {
        let mut hmm = tiny();
        let mut now = Time::ZERO;
        for p in 0..10 {
            now = read(&mut hmm, now, p);
        }
        let reads_before = hmm.metrics().ssd_reads;
        read(&mut hmm, now, 0); // evicted earlier -> page-cache hit
        let m = hmm.metrics();
        assert_eq!(m.ssd_reads, reads_before);
        assert_eq!(m.t2_hits, 1);
    }

    #[test]
    fn serialized_drain_throttles_concurrent_faults() {
        // Submit many faults at the same instant: completions must spread
        // out by at least the drain cost each.
        let mut hmm = Hmm::new(HmmConfig::new(TierGeometry::from_tier1(64, 4.0, 2.0)));
        let mut completions: Vec<Time> = (0..16u64)
            .map(|p| hmm.access(Time::ZERO, &WarpAccess::read(PageId(p))))
            .collect();
        completions.sort_unstable();
        let drain = hmm.config().fault_drain_cost.as_nanos();
        for pair in completions.windows(2) {
            let gap = pair[1].since(pair[0]).as_nanos();
            assert!(
                gap >= drain,
                "faults completed {gap} ns apart, drain is {drain} ns"
            );
        }
    }

    #[test]
    fn migration_chunks_cut_fault_counts_on_scans() {
        let geometry = TierGeometry::from_tier1(32, 4.0, 2.0);
        let mut chunked_cfg = HmmConfig::new(geometry);
        chunked_cfg.migration_chunk_pages = 8;
        let mut plain = Hmm::new(HmmConfig::new(geometry));
        let mut chunked = Hmm::new(chunked_cfg);
        let mut now_p = Time::ZERO;
        let mut now_c = Time::ZERO;
        for p in 0..160u64 {
            now_p = plain.access(now_p, &WarpAccess::read(PageId(p)));
            now_c = chunked.access(now_c, &WarpAccess::read(PageId(p)));
        }
        let (pm, cm) = (plain.metrics(), chunked.metrics());
        assert!(cm.prefetches > 0);
        assert!(
            cm.t1_misses * 4 < pm.t1_misses,
            "chunking must slash fault counts: {} vs {}",
            cm.t1_misses,
            pm.t1_misses
        );
        assert!(
            now_c < now_p,
            "fewer serialized faults must finish the scan sooner"
        );
    }

    #[test]
    fn fault_batching_amortizes_the_drain() {
        let geometry = TierGeometry::from_tier1(64, 4.0, 2.0);
        let mut plain = Hmm::new(HmmConfig::new(geometry));
        let mut batched_cfg = HmmConfig::new(geometry);
        batched_cfg.fault_batch = 8;
        let mut batched = Hmm::new(batched_cfg);
        let mut last_plain = Time::ZERO;
        let mut last_batched = Time::ZERO;
        for p in 0..32u64 {
            last_plain = last_plain.max(plain.access(Time::ZERO, &WarpAccess::read(PageId(p))));
            last_batched =
                last_batched.max(batched.access(Time::ZERO, &WarpAccess::read(PageId(p))));
        }
        assert!(
            last_batched < last_plain,
            "batched drain must finish the fault burst sooner ({last_batched:?} vs {last_plain:?})"
        );
    }

    #[test]
    fn dirty_page_cache_spills_write_to_ssd() {
        let mut hmm = tiny();
        let mut now = Time::ZERO;
        // Dirty 4 pages, then stream enough to push them through the page
        // cache (capacity 16) and out the far side.
        for p in 0..4 {
            now = hmm.access(now, &WarpAccess::write(PageId(p)));
        }
        for p in 4..39 {
            now = read(&mut hmm, now, p);
        }
        assert!(
            hmm.metrics().t2_writebacks > 0,
            "dirty spills must hit the SSD"
        );
    }
}
