//! The committed hot-path benchmark harness behind `BENCH_hotpath.json`.
//!
//! Every PR regenerates `BENCH_hotpath.json` at the repo root with the
//! `hotpath` binary, committing the events/sec trajectory of the
//! simulator's hottest paths (ROADMAP item 1). Scenarios are fixed —
//! fixed seeds, fixed workload shapes — so the only thing that moves
//! between PRs is the implementation under test:
//!
//! | Scenario | Hot path exercised |
//! |---|---|
//! | `serve_sweep` | the `serve_bench` isolation sweep: multi-tenant replay, clocks, sampler, trace ring, report |
//! | `replay_gmt` / `replay_bam` / `replay_hmm` | single-tenant executor replay per system |
//! | `trace_export` | trace ring fill + JSONL/CSV export |
//! | `event_calendar` | `EventQueue` schedule/cancel/pop storm |
//! | `page_structures` | `ClockList`/`FifoCache`/`Tier2Cache` churn |
//!
//! Wall time is host time (this crate is outside the D1 no-wall-clock
//! boundary); *event counts* are purely virtual and must be identical
//! across runs of the same mode — the harness asserts it across reps
//! and `cargo test` asserts it across whole-suite runs.

use std::time::Instant;

use gmt_core::GmtConfig;
use gmt_gpu::ExecutorConfig;
use gmt_mem::{ClockList, FifoCache, PageId, TierGeometry};
use gmt_sim::events::EventQueue;
use gmt_sim::trace::{self, TierTag, TraceEvent, TraceSink};
use gmt_sim::Time;
use gmt_workloads::srad::Srad;
use gmt_workloads::synthetic::{SequentialScan, ZipfLoop};
use gmt_workloads::WorkloadScale;
use rand::Rng;

use gmt_analysis::runner::{geometry_for, run_system, SystemKind};
use gmt_core::PolicyKind;
use gmt_serve::{
    ArrivalSchedule, PartitionPolicy, ServeConfig, ServeOutcome, TenantRegistry, TenantSpec,
    TieredService,
};

/// Schema tag written into (and expected from) `BENCH_hotpath.json`.
pub const SCHEMA: &str = "gmt-bench-hotpath/1";

/// Default regression tolerance for [`check_regression`]: fail when a
/// scenario delivers less than 80 % of the committed events/sec.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// Benchmark scale: `Full` is what `BENCH_hotpath.json` commits; `Quick`
/// is the CI smoke / `cargo test` scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Committed scale.
    Full,
    /// Smoke-test scale.
    Quick,
}

impl Mode {
    /// The string written into the JSON `mode` field.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Full => "full",
            Mode::Quick => "quick",
        }
    }
}

/// One measured scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Stable scenario name (JSON key, `--check` join key).
    pub name: &'static str,
    /// Seed the scenario ran under.
    pub seed: u64,
    /// Timed repetitions (best-of wall time is reported).
    pub reps: u32,
    /// Virtual events processed per repetition — identical across reps
    /// by construction (asserted).
    pub events: u64,
    /// Best-of-reps wall time, nanoseconds.
    pub wall_ns: u64,
    /// `events / wall`, the committed throughput figure.
    pub events_per_sec: f64,
}

/// Runs `body` `reps` times, asserting the virtual event count is
/// identical every time, and keeps the best wall time.
fn timed(
    name: &'static str,
    seed: u64,
    reps: u32,
    mut body: impl FnMut() -> u64,
) -> ScenarioResult {
    assert!(reps > 0, "at least one repetition");
    let mut best_ns = u64::MAX;
    let mut events = 0u64;
    for rep in 0..reps {
        let start = Instant::now();
        let e = body();
        let ns = (start.elapsed().as_nanos() as u64).max(1);
        assert!(e > 0, "{name}: scenario produced no events");
        if rep == 0 {
            events = e;
        } else {
            assert_eq!(e, events, "{name}: event count drifted across reps");
        }
        best_ns = best_ns.min(ns);
    }
    ScenarioResult {
        name,
        seed,
        reps,
        events,
        wall_ns: best_ns,
        events_per_sec: events as f64 / (best_ns as f64 / 1e9),
    }
}

/// Tier-1 capacity of the serving sweep (mirrors `serve_bench`).
const SERVE_TIER1_PAGES: usize = 256;
/// Trace ring sized to the biggest sweep run.
const SERVE_TRACE_CAPACITY: usize = 1 << 22;

fn serve_geometry() -> TierGeometry {
    TierGeometry::from_tier1(SERVE_TIER1_PAGES, 2.0, 2.0)
}

fn zipf_tenant(name: &str, accesses: usize, seed: u64) -> TenantSpec {
    TenantSpec {
        name: name.into(),
        workload: Box::new(ZipfLoop::new(
            &WorkloadScale::pages(192),
            1.0,
            0.05,
            accesses,
        )),
        arrival: ArrivalSchedule::Poisson { mean_gap_ns: 4_000 },
        quota_pages: 192,
        weight: 3,
        floor_pages: 184,
        seed,
    }
}

fn scan_tenant(passes: usize, seed: u64) -> TenantSpec {
    TenantSpec {
        name: "scan".into(),
        workload: Box::new(SequentialScan::new(&WorkloadScale::pages(1_024), passes)),
        arrival: ArrivalSchedule::Bursty {
            burst: 64,
            gap_ns: 100,
            idle_ns: 5_000,
        },
        quota_pages: 64,
        weight: 1,
        floor_pages: 16,
        seed,
    }
}

fn serve_run(policy: PartitionPolicy, specs: Vec<TenantSpec>) -> ServeOutcome {
    let mut registry = TenantRegistry::new(SERVE_TIER1_PAGES, policy);
    for spec in specs {
        registry.admit(spec).expect("bench tenants always fit");
    }
    let config = ServeConfig {
        gmt: GmtConfig::new(serve_geometry()),
        partition: policy,
    };
    let service = TieredService::new(&config, registry).expect("bench config is valid");
    service.serve(ExecutorConfig::default(), SERVE_TRACE_CAPACITY)
}

/// Page-touch decisions made by one serve run: every warp access plus
/// every per-page tiering decision distilled from the counters.
fn serve_events(out: &ServeOutcome) -> u64 {
    let m = &out.aggregate;
    out.accesses + m.t1_hits + m.t1_misses + m.t2_hits + m.t1_evictions
}

/// The `serve_bench` isolation sweep: the Zipf protagonist solo, then
/// against the scan antagonist under all four partitioning policies.
fn serve_sweep(mode: Mode, seed: u64, reps: u32) -> ScenarioResult {
    let (zipf_accesses, scan_passes) = match mode {
        Mode::Full => (6_000, 132),
        Mode::Quick => (1_200, 26),
    };
    timed("serve_sweep", seed, reps, || {
        let mut events = 0u64;
        let solo = serve_run(
            PartitionPolicy::FullyShared,
            vec![zipf_tenant("zipf", zipf_accesses, seed + 10)],
        );
        events += serve_events(&solo);
        for policy in PartitionPolicy::ALL {
            let out = serve_run(
                policy,
                vec![
                    zipf_tenant("zipf", zipf_accesses, seed + 10),
                    scan_tenant(scan_passes, seed + 22),
                ],
            );
            events += serve_events(&out);
        }
        events
    })
}

/// Single-tenant replay of the Srad workload on one system.
fn replay(
    name: &'static str,
    system: SystemKind,
    mode: Mode,
    seed: u64,
    reps: u32,
) -> ScenarioResult {
    let pages = match mode {
        Mode::Full => 2_000,
        Mode::Quick => 500,
    };
    let workload = Srad::with_scale(&WorkloadScale::pages(pages));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    timed(name, seed, reps, || {
        let r = run_system(&workload, system, &geometry, seed);
        r.metrics.accesses + r.metrics.t1_hits + r.metrics.t1_misses + r.metrics.t1_evictions
    })
}

/// Fills a bounded ring with a representative event mix, then exports
/// JSONL and CSV — the byte-deterministic paths the golden tests pin.
fn trace_export(mode: Mode, seed: u64, reps: u32) -> ScenarioResult {
    let records = match mode {
        Mode::Full => 400_000usize,
        Mode::Quick => 40_000,
    };
    timed("trace_export", seed, reps, || {
        let sink = TraceSink::bounded(records);
        let mut vt = 0u64;
        for i in 0..records as u64 {
            vt += 1;
            sink.set_vt(vt);
            let at = Time::from_nanos(i * 3);
            match i % 5 {
                0 => sink.emit(at, TraceEvent::Tier1Hit { page: i % 4096 }),
                1 => sink.emit(
                    at,
                    TraceEvent::Tier1Miss {
                        page: i % 4096,
                        resident: TierTag::Host,
                    },
                ),
                2 => sink.emit(
                    at,
                    TraceEvent::Tier1Fill {
                        page: i % 4096,
                        source: TierTag::Ssd,
                        ready_ns: i * 3 + 900,
                    },
                ),
                3 => sink.emit(
                    at,
                    TraceEvent::Eviction {
                        page: i % 4096,
                        predicted: Some(TierTag::Host),
                        target: TierTag::Host,
                        dirty: i % 2 == 0,
                    },
                ),
                _ => sink.emit(
                    at,
                    TraceEvent::Tier2Place {
                        page: i % 4096,
                        dirty: i % 2 == 1,
                    },
                ),
            }
        }
        let snapshot = sink.drain();
        assert_eq!(snapshot.len(), records);
        let jsonl = trace::to_jsonl(&snapshot);
        let csv = trace::to_csv(&snapshot);
        // Count: one emit + one JSONL line + one CSV line per record.
        (records * 3) as u64 + (jsonl.len() as u64 % 2) + (csv.len() as u64 % 2)
    })
}

/// Schedule/cancel/pop storm on the event calendar.
fn event_calendar(mode: Mode, seed: u64, reps: u32) -> ScenarioResult {
    let ops = match mode {
        Mode::Full => 400_000usize,
        Mode::Quick => 50_000,
    };
    timed("event_calendar", seed, reps, || {
        let mut rng = gmt_sim::rng::seeded(seed ^ 0xCAFE);
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut live: Vec<gmt_sim::events::EventId> = Vec::new();
        let mut events = 0u64;
        for i in 0..ops as u64 {
            let at = Time::from_nanos(q.now().as_nanos() + rng.gen_range(0..10_000u64));
            live.push(q.schedule(at, i));
            events += 1;
            if i % 3 == 0 && q.pop().is_some() {
                events += 1;
            }
            if i % 7 == 0 && !live.is_empty() {
                let pick = rng.gen_range(0..live.len());
                let id = live.swap_remove(pick);
                if q.cancel(id) {
                    events += 1;
                }
            }
        }
        while q.pop().is_some() {
            events += 1;
        }
        events
    })
}

/// Tier-structure churn: a Zipf page stream hammering the Tier-1 clock
/// and the Tier-2 FIFO directly, without the executor in the way — the
/// purest view of the page-lookup/eviction data layout.
fn page_structures(mode: Mode, seed: u64, reps: u32) -> ScenarioResult {
    let touches = match mode {
        Mode::Full => 2_000_000usize,
        Mode::Quick => 200_000,
    };
    const CAP: usize = 1 << 12;
    const SPACE: u64 = 1 << 14;
    timed("page_structures", seed, reps, || {
        let zipf = gmt_sim::Zipf::new(SPACE, 0.9);
        let mut rng = gmt_sim::rng::seeded(seed ^ 0xBEEF);
        let mut clock = ClockList::new(CAP);
        let mut fifo = FifoCache::new(CAP);
        let mut events = 0u64;
        for _ in 0..touches {
            let page = PageId(zipf.sample(&mut rng));
            if !clock.touch(page) {
                // A Tier-1 miss: promote from the FIFO if present, then
                // install, spilling the clock victim into the FIFO.
                if fifo.remove(page) {
                    events += 1;
                }
                if clock.is_full() {
                    let victim = clock.replace_candidate(page);
                    if fifo.insert_evicting(victim).is_some() {
                        events += 1;
                    }
                } else {
                    clock.insert(page);
                }
            }
            events += 2;
        }
        events
    })
}

/// Runs the whole suite in `mode`; order is the committed JSON order.
pub fn run_suite(mode: Mode, seed: u64) -> Vec<ScenarioResult> {
    let reps = match mode {
        Mode::Full => 3,
        Mode::Quick => 2,
    };
    vec![
        serve_sweep(mode, seed, reps),
        replay(
            "replay_gmt",
            SystemKind::Gmt(PolicyKind::Reuse),
            mode,
            seed,
            reps,
        ),
        replay("replay_bam", SystemKind::Bam, mode, seed, reps),
        replay("replay_hmm", SystemKind::Hmm, mode, seed, reps),
        trace_export(mode, seed, reps),
        event_calendar(mode, seed, reps),
        page_structures(mode, seed, reps),
    ]
}

/// A `(name, events, events_per_sec)` row parsed from a committed file.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedScenario {
    /// Scenario name.
    pub name: String,
    /// Committed event count.
    pub events: u64,
    /// Committed throughput.
    pub events_per_sec: f64,
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the scenario rows out of a `BENCH_hotpath.json` document
/// (one scenario object per line — the format [`render_json`] writes).
/// Rows inside the `"baseline"` block are skipped.
pub fn parse_scenarios(doc: &str) -> Vec<CommittedScenario> {
    let mut out = Vec::new();
    let mut in_baseline = false;
    for line in doc.lines() {
        if line.contains("\"baseline\":") {
            in_baseline = true;
        }
        if in_baseline && line.trim_start().starts_with(']') {
            in_baseline = false;
            continue;
        }
        if in_baseline {
            continue;
        }
        let (Some(name), Some(events), Some(eps)) = (
            extract_str(line, "name"),
            extract_num(line, "events"),
            extract_num(line, "events_per_sec"),
        ) else {
            continue;
        };
        out.push(CommittedScenario {
            name,
            events: events as u64,
            events_per_sec: eps,
        });
    }
    out
}

/// Validates a rendered document: schema tag, mode, and well-formed
/// scenario rows with positive counts and rates.
///
/// # Errors
///
/// Returns a description of the first malformed element.
pub fn validate_schema(doc: &str) -> Result<(), String> {
    if !doc.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("missing or wrong schema tag (want {SCHEMA})"));
    }
    if extract_str(doc, "mode").is_none() {
        return Err("missing mode field".into());
    }
    let rows = parse_scenarios(doc);
    if rows.is_empty() {
        return Err("no scenario rows found".into());
    }
    for r in &rows {
        if r.events == 0 {
            return Err(format!("{}: zero events", r.name));
        }
        if !(r.events_per_sec.is_finite() && r.events_per_sec > 0.0) {
            return Err(format!("{}: non-positive events/sec", r.name));
        }
    }
    Ok(())
}

fn render_row(indent: &str, r: &ScenarioResult) -> String {
    format!(
        "{indent}{{\"name\": \"{}\", \"seed\": {}, \"reps\": {}, \"events\": {}, \"wall_ns\": {}, \"events_per_sec\": {:.1}}}",
        r.name, r.seed, r.reps, r.events, r.wall_ns, r.events_per_sec
    )
}

/// Renders the committed JSON document. `baseline` embeds the
/// pre-overhaul numbers (another suite run) plus per-scenario speedups.
pub fn render_json(
    mode: Mode,
    seed: u64,
    results: &[ScenarioResult],
    baseline: Option<(&str, &[CommittedScenario])>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"mode\": \"{}\",\n", mode.name()));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&render_row("    ", r));
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    if let Some((label, rows)) = baseline {
        out.push_str(",\n");
        out.push_str(&format!(
            "  \"baseline\": {{\n    \"label\": \"{label}\",\n    \"rows\": [\n"
        ));
        for (i, b) in rows.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"scenario\": \"{}\", \"base_events\": {}, \"base_events_per_sec\": {:.1}}}",
                b.name, b.events, b.events_per_sec
            ));
            out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("    ]\n  },\n");
        out.push_str("  \"speedup_vs_baseline\": [\n");
        let mut lines = Vec::new();
        for r in results {
            if let Some(b) = rows.iter().find(|b| b.name == r.name) {
                lines.push(format!(
                    "    {{\"scenario\": \"{}\", \"x\": {:.2}}}",
                    r.name,
                    r.events_per_sec / b.events_per_sec
                ));
            }
        }
        out.push_str(&lines.join(",\n"));
        out.push_str("\n  ]\n");
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Compares a fresh suite run against a committed document; a scenario
/// regresses when it delivers less than `1 - tolerance` of the
/// committed events/sec. Event-count drift in the same mode is also an
/// error — counts are virtual and must be deterministic.
///
/// # Errors
///
/// Returns every regressed or drifted scenario, one per line.
pub fn check_regression(
    current: &[ScenarioResult],
    committed_doc: &str,
    tolerance: f64,
) -> Result<(), String> {
    let committed = parse_scenarios(committed_doc);
    if committed.is_empty() {
        return Err("committed document has no scenario rows".into());
    }
    let mut failures = Vec::new();
    for c in &committed {
        let Some(r) = current.iter().find(|r| r.name == c.name) else {
            failures.push(format!("{}: scenario missing from current suite", c.name));
            continue;
        };
        if r.events != c.events {
            failures.push(format!(
                "{}: event count drifted (committed {}, current {})",
                c.name, c.events, r.events
            ));
        }
        let floor = c.events_per_sec * (1.0 - tolerance);
        if r.events_per_sec < floor {
            failures.push(format!(
                "{}: {:.0} events/sec is below {:.0} ({}% tolerance on committed {:.0})",
                c.name,
                r.events_per_sec,
                floor,
                (tolerance * 100.0) as u32,
                c.events_per_sec
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(name: &'static str, events: u64, eps: f64) -> ScenarioResult {
        ScenarioResult {
            name,
            seed: 1,
            reps: 1,
            events,
            wall_ns: (events as f64 / eps * 1e9) as u64,
            events_per_sec: eps,
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let results = [fake("a", 100, 1e6), fake("b", 200, 2.5e7)];
        let doc = render_json(Mode::Quick, 1, &results, None);
        validate_schema(&doc).expect("fresh render validates");
        let rows = parse_scenarios(&doc);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "a");
        assert_eq!(rows[0].events, 100);
        assert!((rows[1].events_per_sec - 2.5e7).abs() < 1.0);
    }

    #[test]
    fn baseline_rows_are_not_parsed_as_current() {
        let results = [fake("a", 100, 1e6)];
        let base = [CommittedScenario {
            name: "a".into(),
            events: 100,
            events_per_sec: 1e5,
        }];
        let doc = render_json(Mode::Full, 1, &results, Some(("pre", &base)));
        let rows = parse_scenarios(&doc);
        assert_eq!(rows.len(), 1, "baseline block must be skipped:\n{doc}");
        assert!((rows[0].events_per_sec - 1e6).abs() < 1.0);
        assert!(doc.contains("\"x\": 10.00"), "speedup row:\n{doc}");
    }

    #[test]
    fn regression_gate_fires_on_slowdown_and_drift() {
        let committed = render_json(Mode::Full, 1, &[fake("a", 100, 1e6)], None);
        let ok = [fake("a", 100, 0.9e6)];
        assert!(check_regression(&ok, &committed, 0.20).is_ok());
        let slow = [fake("a", 100, 0.5e6)];
        assert!(check_regression(&slow, &committed, 0.20).is_err());
        let drift = [fake("a", 99, 1e6)];
        let err = check_regression(&drift, &committed, 0.20).unwrap_err();
        assert!(err.contains("drifted"), "{err}");
    }

    #[test]
    fn schema_validation_rejects_malformed_documents() {
        assert!(validate_schema("{}").is_err());
        let doc = render_json(Mode::Quick, 1, &[fake("a", 100, 1e6)], None);
        assert!(validate_schema(&doc.replace("gmt-bench-hotpath/1", "nope")).is_err());
    }
}
