//! Shared harness for regenerating every table and figure of the paper.
//!
//! Each `fig*`/`tab*` binary in `src/bin/` regenerates one artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `tab2` | Table 2 (application characteristics) |
//! | `fig4a` | Fig. 4a (VTD ↔ RD correlation) |
//! | `fig4bc` | Fig. 4b/4c (RRD at successive Tier-1 evictions) |
//! | `fig6a` | Fig. 6a (transfer efficiency vs batch size) |
//! | `fig6b` | Fig. 6b (delivered bandwidth vs Zipf skew) |
//! | `fig7` | Fig. 7 (RRD distributions + reuse %) |
//! | `fig8` | Fig. 8a/8b (speedup and I/O vs BaM) |
//! | `fig9` | Fig. 9 (GMT-Reuse prediction accuracy) |
//! | `fig10` | Fig. 10a/10b (Tier-2 overheads) |
//! | `fig11` | Fig. 11 (over-subscription 4) |
//! | `fig12` | Fig. 12 (Tier-2:Tier-1 ratio sweep) |
//! | `fig13` | Fig. 13 (Tier-1 = 32 GB, non-graph apps) |
//! | `fig14` | Fig. 14 + §3.6 (HMM, optimistic HMM) |
//! | `mrc` | miss-ratio curves at the tier capacities (extension) |
//! | `timeline` | §2.1.3 pipelined-regression warm-up study (extension) |
//! | `overheads` | §3.4 Tier-2 cost accounting |
//! | `report` | one-command markdown report (`REPORT.md`) |
//!
//! Absolute numbers come from the simulated substrate; the *shapes* are
//! the reproduction target (see `EXPERIMENTS.md`). Scale is controlled by
//! the `GMT_T1_PAGES` environment variable (default 1024 Tier-1 pages;
//! the paper's unscaled 16 GB is 262144).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hotpath;

use gmt_analysis::runner::{geometry_for, run_system, RunResult, SystemKind};
use gmt_core::PolicyKind;
use gmt_mem::TierGeometry;
use gmt_pcie::{HostLink, HostLinkConfig, TransferBatch, TransferMethod};
use gmt_sim::{Time, Zipf};
use gmt_workloads::{suite, Workload, WorkloadScale};
use rand::Rng;

/// Tier-1 pages used by the figure binaries (env `GMT_T1_PAGES`,
/// default 1024).
pub fn bench_tier1_pages() -> usize {
    std::env::var("GMT_T1_PAGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

/// The seed every figure run uses (env `GMT_SEED`, default 1).
pub fn bench_seed() -> u64 {
    std::env::var("GMT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// A workload paired with the geometry it runs over.
pub struct Prepared {
    /// The workload.
    pub workload: Box<dyn Workload>,
    /// Its per-app geometry (graph apps derive it from the graph, §3.5).
    pub geometry: TierGeometry,
}

/// Builds the nine-application suite with per-app geometries at the given
/// Tier-2:Tier-1 `ratio` and over-subscription `os`.
pub fn prepared_suite(tier1_pages: usize, ratio: f64, os: f64) -> Vec<Prepared> {
    let scale = WorkloadScale::pages(((tier1_pages as f64) * (1.0 + ratio) * os).round() as usize);
    suite(&scale)
        .into_iter()
        .map(|workload| {
            let geometry = geometry_for(workload.as_ref(), ratio, os);
            Prepared { workload, geometry }
        })
        .collect()
}

/// Runs one prepared workload on a list of systems; returns results in
/// the same order.
pub fn run_all(prepared: &Prepared, systems: &[SystemKind], seed: u64) -> Vec<RunResult> {
    systems
        .iter()
        .map(|&s| run_system(prepared.workload.as_ref(), s, &prepared.geometry, seed))
        .collect()
}

/// The four systems of Fig. 8, BaM first.
pub fn fig8_systems() -> [SystemKind; 4] {
    [
        SystemKind::Bam,
        SystemKind::Gmt(PolicyKind::TierOrder),
        SystemKind::Gmt(PolicyKind::Random),
        SystemKind::Gmt(PolicyKind::Reuse),
    ]
}

/// One data point of the Fig. 6b micro-benchmark: a small pool of copy
/// warps repeatedly draws 32 Zipf-distributed page addresses; lanes that
/// hit the resident set coalesce away, and the remaining *misses* form
/// the transfer batch. Returns delivered (unique) bandwidth in
/// bytes/second.
///
/// Modeling notes, matching the paper's setup (§2.3): higher skew means
/// more lanes hit resident pages, so batches shrink — "skewness closer
/// to 1.0 will involve fewer transfers". The threads employable for a
/// zero-copy batch are the *missing lanes* (a lane can only drive a
/// load/store stream for data it is waiting on), so small batches also
/// mean few threads — the regime where Hybrid-XT must fall back to DMA.
pub fn zipf_delivered_bandwidth(
    method: TransferMethod,
    skew: f64,
    pages: u64,
    iterations: usize,
    seed: u64,
) -> f64 {
    const PAGE_BYTES: u64 = 64 * 1024;
    const WARPS: usize = 8;
    let zipf = Zipf::new(pages, skew);
    let mut rng = gmt_sim::rng::seeded(seed);
    let mut link = HostLink::new(HostLinkConfig::default());
    let mut resident = gmt_mem::ClockList::new((pages as usize * 5 / 8).max(8));
    let mut warp_ready = [Time::ZERO; WARPS];
    let mut moved_bytes = 0u64;
    let mut makespan = Time::ZERO;

    for i in 0..iterations {
        let w = i % WARPS;
        let mut distinct: Vec<u64> = Vec::with_capacity(32);
        let mut miss_lanes = 0u32;
        for _ in 0..32 {
            let page = zipf.sample(&mut rng);
            if resident.touch(gmt_mem::PageId(page)) {
                continue; // lane hit a resident page: no transfer needed
            }
            miss_lanes += 1;
            if !distinct.contains(&page) {
                distinct.push(page);
            }
            if resident.is_full() {
                resident.replace_candidate(gmt_mem::PageId(page));
            } else {
                resident.insert(gmt_mem::PageId(page));
            }
        }
        if distinct.is_empty() {
            continue;
        }
        let batch = TransferBatch {
            pages: distinct.len(),
            page_bytes: PAGE_BYTES,
            threads: miss_lanes,
        };
        let done = link.transfer(warp_ready[w], batch, method);
        warp_ready[w] = done;
        moved_bytes += batch.bytes();
        makespan = makespan.max(done);
    }
    moved_bytes as f64 / makespan.since(Time::ZERO).as_secs_f64().max(1e-12)
}

/// Fig. 6a data point: time to move one batch of `n` non-contiguous
/// pages with a full warp, as achieved bandwidth (bytes/second).
pub fn batch_transfer_bandwidth(method: TransferMethod, n: usize) -> f64 {
    const PAGE_BYTES: u64 = 64 * 1024;
    let mut link = HostLink::new(HostLinkConfig::default());
    let batch = TransferBatch {
        pages: n,
        page_bytes: PAGE_BYTES,
        threads: 32,
    };
    let done = link.transfer(Time::ZERO, batch, method);
    batch.bytes() as f64 / done.since(Time::ZERO).as_secs_f64().max(1e-12)
}

/// Convenience used by several binaries: draws a uniformly random page
/// trace (for sanity baselines).
pub fn random_trace(total_pages: u64, accesses: usize, seed: u64) -> Vec<gmt_mem::WarpAccess> {
    let mut rng = gmt_sim::rng::seeded(seed);
    (0..accesses)
        .map(|_| gmt_mem::WarpAccess::read(gmt_mem::PageId(rng.gen_range(0..total_pages))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_crossover_shape() {
        let dma_small = batch_transfer_bandwidth(TransferMethod::DmaAsync, 2);
        let zc_small = batch_transfer_bandwidth(TransferMethod::ZeroCopy, 2);
        let dma_big = batch_transfer_bandwidth(TransferMethod::DmaAsync, 48);
        let zc_big = batch_transfer_bandwidth(TransferMethod::ZeroCopy, 48);
        assert!(dma_small > zc_small, "DMA must win small batches");
        assert!(zc_big > dma_big, "zero-copy must win large batches");
    }

    #[test]
    fn fig6b_shapes() {
        let bw = |m: TransferMethod, s: f64| zipf_delivered_bandwidth(m, s, 4096, 2000, 3);
        // Zero-copy wins under uniform access but degrades with skew as
        // batches (and employable threads) shrink.
        let zc0 = bw(TransferMethod::ZeroCopy, 0.0);
        let zc99 = bw(TransferMethod::ZeroCopy, 0.99);
        let dma0 = bw(TransferMethod::DmaAsync, 0.0);
        let dma99 = bw(TransferMethod::DmaAsync, 0.99);
        assert!(
            zc0 > 1.3 * dma0,
            "ZC must clearly win at skew 0: {zc0:.2e} vs {dma0:.2e}"
        );
        assert!(
            zc99 < 0.8 * zc0,
            "ZC must degrade with skew: {zc99:.2e} vs {zc0:.2e}"
        );
        // DMA is flat: the engine is the bottleneck regardless of skew.
        assert!((dma0 - dma99).abs() < 0.1 * dma0, "DMA should be flat");
        // Every hybrid stays at least as good as pure DMA at every skew.
        for x in [8u32, 16, 32] {
            for &skew in &[0.0, 0.5, 0.99] {
                let h = bw(TransferMethod::hybrid(x), skew);
                let dma = bw(TransferMethod::DmaAsync, skew);
                assert!(h >= 0.95 * dma, "H{x}T below DMA at skew {skew}");
            }
        }
        // And the best hybrid recovers zero-copy's advantage at skew 0.
        let best_h0 = [8u32, 16, 32]
            .iter()
            .map(|&x| bw(TransferMethod::hybrid(x), 0.0))
            .fold(0.0f64, f64::max);
        assert!(best_h0 > 0.9 * zc0, "hybrids must track ZC at skew 0");
    }

    #[test]
    fn zipf_micro_bandwidth_drops_with_skew() {
        let uniform = zipf_delivered_bandwidth(TransferMethod::hybrid(8), 0.0, 4096, 2000, 3);
        let skewed = zipf_delivered_bandwidth(TransferMethod::hybrid(8), 0.99, 4096, 2000, 3);
        assert!(
            uniform > skewed,
            "fewer distinct pages must deliver less bandwidth"
        );
    }

    #[test]
    fn prepared_suite_covers_nine_apps() {
        let prepared = prepared_suite(128, 4.0, 2.0);
        assert_eq!(prepared.len(), 9);
        for p in &prepared {
            assert!(p.geometry.tier1_pages > 0);
        }
    }
}
