//! Regenerates Fig. 10a/10b: the overheads of adding Tier-2 —
//! wasteful Tier-2 lookups and Tier-1 ⇄ Tier-2 PCIe traffic.
//!
//! Run with `cargo run -p gmt-bench --release --bin fig10`.

use gmt_analysis::runner::geometry_for;
use gmt_analysis::table::{fmt_pct, Table};
use gmt_analysis::tracesum::{queue_depth_percentiles, run_gmt_traced, summarize_windows};
use gmt_bench::{bench_seed, bench_tier1_pages, fig8_systems, prepared_suite, run_all};
use gmt_core::GmtConfig;
use gmt_workloads::{synthetic::ZipfLoop, WorkloadScale};

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    let systems = fig8_systems();
    println!("Fig. 10: Tier-2 overheads (Tier-1 = {tier1} pages, ratio 4, OS 2)\n");
    let mut wasteful = Table::new(vec![
        "Application",
        "TierOrder wasteful lookups",
        "Random wasteful lookups",
        "Reuse wasteful lookups",
    ]);
    let mut traffic = Table::new(vec![
        "Application",
        "TierOrder T1->T2 / T2->T1 (% of BaM I/O)",
        "Random T1->T2 / T2->T1",
        "Reuse T1->T2 / T2->T1",
    ]);
    for p in prepared_suite(tier1, 4.0, 2.0) {
        let results = run_all(&p, &systems, seed);
        let (bam, rest) = results.split_first().expect("four systems");
        let bam_io = bam.metrics.ssd_ios().max(1) as f64;
        let mut wasteful_row = vec![bam.workload.clone()];
        let mut traffic_row = vec![bam.workload.clone()];
        for r in rest {
            wasteful_row.push(fmt_pct(r.metrics.wasteful_lookup_rate()));
            traffic_row.push(format!(
                "{} / {}",
                fmt_pct(r.metrics.t2_placements as f64 / bam_io),
                fmt_pct(r.metrics.t2_hits as f64 / bam_io),
            ));
        }
        wasteful.row(wasteful_row);
        traffic.row(traffic_row);
    }
    println!("Fig. 10a: wasteful Tier-2 lookups as % of Tier-1 misses");
    gmt_analysis::table::emit(&wasteful);
    println!("(paper: GMT-Reuse has the fewest; TierOrder the most)\n");
    println!("Fig. 10b: Tier-1<->Tier-2 transfers as % of BaM's SSD transfers");
    gmt_analysis::table::emit(&traffic);
    println!("(paper: placements should roughly equal retrievals — unmatched");
    println!(" placements are wasted PCIe traffic; TierOrder is worst at this)");
    println!();
    println!("(§3.4: the paper prices these overheads at ~2.41% of execution;");
    println!(" each wasted lookup costs ~50 ns against multi-second runs here too)");

    // Trace-derived hardware view of the same overheads: PCIe bytes per
    // window and the SSD queue-depth distribution during a skewed loop.
    let workload = ZipfLoop::new(&WorkloadScale::pages(tier1 * 10), 0.8, 0.1, tier1 * 80);
    let config = GmtConfig::new(geometry_for(&workload, 4.0, 2.0));
    let run = run_gmt_traced(&workload, &config, seed, 1 << 21);
    let width = (run.elapsed / 10).max(gmt_sim::Dur::from_nanos(1));
    println!("\nPCIe traffic per window, Zipf(0.8) loop (trace-derived):");
    let mut pcie = Table::new(vec!["window start (us)", "to GPU (KiB)", "to host (KiB)"]);
    for w in summarize_windows(&run.records, width) {
        pcie.row(vec![
            (w.start_ns / 1_000).to_string(),
            (w.pcie_bytes_to_gpu / 1024).to_string(),
            (w.pcie_bytes_to_host / 1024).to_string(),
        ]);
    }
    gmt_analysis::table::emit(&pcie);
    let depths = queue_depth_percentiles(&run.records, &[50.0, 95.0, 99.0]);
    if let [p50, p95, p99] = depths[..] {
        println!("SSD queue depth: p50 = {p50}, p95 = {p95}, p99 = {p99}");
    }
    if run.dropped > 0 {
        println!(
            "(trace ring dropped {} early records; windows cover the tail)",
            run.dropped
        );
    }
}
