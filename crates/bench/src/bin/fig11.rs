//! Regenerates Fig. 11: speedup over BaM at an over-subscription factor
//! of 4 (double the default datasets / half the capacities).
//!
//! Run with `cargo run -p gmt-bench --release --bin fig11`.

use gmt_analysis::runner::geo_mean;
use gmt_analysis::table::{fmt_ratio, Table};
use gmt_bench::{bench_seed, bench_tier1_pages, fig8_systems, prepared_suite, run_all};

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    let systems = fig8_systems();
    println!("Fig. 11: Tier-1 = {tier1} pages, Tier-2 = 4x, over-subscription 4\n");
    let mut table = Table::new(vec![
        "Application",
        "GMT-TierOrder",
        "GMT-Random",
        "GMT-Reuse",
    ]);
    let mut means = [Vec::new(), Vec::new(), Vec::new()];
    for p in prepared_suite(tier1, 4.0, 4.0) {
        let results = run_all(&p, &systems, seed);
        let (bam, rest) = results.split_first().expect("four systems");
        let mut row = vec![bam.workload.clone()];
        for (i, r) in rest.iter().enumerate() {
            let s = r.speedup_over(bam);
            means[i].push(s);
            row.push(fmt_ratio(s));
        }
        table.row(row);
    }
    table.row(vec![
        "geo-mean".into(),
        fmt_ratio(geo_mean(means[0].iter().copied())),
        fmt_ratio(geo_mean(means[1].iter().copied())),
        fmt_ratio(geo_mean(means[2].iter().copied())),
    ]);
    gmt_analysis::table::emit(&table);
    println!("(paper averages at OS=4: TierOrder 1.03x, Random 1.14x, Reuse 1.23x —");
    println!(" lower than OS=2, but GMT-Reuse's advantage persists)");
}
