//! Regenerates Fig. 7: per-application RRD distribution at Tier-1
//! evictions, split at the tier-capacity lines, plus reuse %.
//!
//! Run with `cargo run -p gmt-bench --release --bin fig7`.

use gmt_analysis::characterize;
use gmt_analysis::table::{fmt_pct, Table};
use gmt_bench::{bench_seed, bench_tier1_pages, prepared_suite};

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    println!(
        "Fig. 7: RRD distribution at Tier-1 evictions (Tier-1 = {tier1} pages, ratio 4, OS 2)\n"
    );
    let mut table = Table::new(vec![
        "Application",
        "Reuse %",
        "RRD < |T1| (short)",
        "|T1| <= RRD < |T1|+|T2| (medium)",
        "RRD >= |T1|+|T2| (long)",
    ]);
    for p in prepared_suite(tier1, 4.0, 2.0) {
        let c = characterize(p.workload.as_ref(), &p.geometry, seed);
        table.row(vec![
            c.name.clone(),
            fmt_pct(c.reuse_pct),
            fmt_pct(c.tier_bias[0]),
            fmt_pct(c.tier_bias[1]),
            fmt_pct(c.tier_bias[2]),
        ]);
    }
    gmt_analysis::table::emit(&table);
    println!("(paper tier bias: lavaMD/Pathfinder Tier-1; BFS/MultiVectorAdd/Srad/Backprop");
    println!(" Tier-2; PageRank 94%, SSSP 97%, Hotspot ~100% Tier-3)");
}
