//! Regenerates Fig. 12: GMT-Reuse speedup over BaM as the Tier-2:Tier-1
//! capacity ratio grows (2, 4, 8) — dataset and Tier-1 held fixed, Tier-2
//! grown, exactly as the paper's caption (16 GB : 32/64/128 GB).
//!
//! Run with `cargo run -p gmt-bench --release --bin fig12`.

use gmt_analysis::runner::{geo_mean, geometry_for, run_system, SystemKind};
use gmt_analysis::table::{fmt_ratio, Table};
use gmt_bench::{bench_seed, bench_tier1_pages};
use gmt_core::PolicyKind;
use gmt_mem::TierGeometry;
use gmt_workloads::{suite, WorkloadScale};

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    let ratios = [2.0f64, 4.0, 8.0];
    println!("Fig. 12: GMT-Reuse speedup over BaM vs Tier-2:Tier-1 ratio");
    println!("(Tier-1 = {tier1} pages and datasets fixed; Tier-2 grown)\n");
    // Datasets are the Fig. 8 defaults (sized for ratio 4, OS 2) and stay
    // fixed across the sweep, exactly like the paper's.
    let scale = WorkloadScale::pages(((tier1 as f64) * 5.0 * 2.0).round() as usize);
    let mut table = Table::new(vec!["Application", "ratio 2", "ratio 4", "ratio 8"]);
    let mut means = vec![Vec::new(); ratios.len()];
    for workload in suite(&scale) {
        // Fix Tier-1 at the app's default geometry; grow only Tier-2.
        let base = geometry_for(workload.as_ref(), 4.0, 2.0);
        let mut row = vec![workload.name().to_string()];
        for (ri, &ratio) in ratios.iter().enumerate() {
            let geometry = TierGeometry {
                tier2_pages: ((base.tier1_pages as f64) * ratio).round() as usize,
                ..base
            };
            let bam = run_system(workload.as_ref(), SystemKind::Bam, &geometry, seed);
            let reuse = run_system(
                workload.as_ref(),
                SystemKind::Gmt(PolicyKind::Reuse),
                &geometry,
                seed,
            );
            let speedup = reuse.speedup_over(&bam);
            means[ri].push(speedup);
            row.push(fmt_ratio(speedup));
        }
        table.row(row);
    }
    table.row(vec![
        "geo-mean".into(),
        fmt_ratio(geo_mean(means[0].iter().copied())),
        fmt_ratio(geo_mean(means[1].iter().copied())),
        fmt_ratio(geo_mean(means[2].iter().copied())),
    ]);
    gmt_analysis::table::emit(&table);
    println!("(paper: speedups grow with the ratio, most for Tier-2-biased apps)");
}
