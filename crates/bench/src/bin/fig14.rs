//! Regenerates Fig. 14 and the §3.6 analysis: HMM and GMT-Reuse speedups
//! over BaM, plus the "optimistic HMM" estimate (HMM credited with
//! GMT-Reuse's hit rates).
//!
//! Run with `cargo run -p gmt-bench --release --bin fig14`.

use gmt_analysis::runner::{geo_mean, optimistic_hmm_elapsed, SystemKind};
use gmt_analysis::table::{fmt_ratio, Table};
use gmt_bench::{bench_seed, bench_tier1_pages, prepared_suite, run_all};
use gmt_core::PolicyKind;
use gmt_sim::Dur;

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    let systems = [
        SystemKind::Bam,
        SystemKind::Hmm,
        SystemKind::Gmt(PolicyKind::Reuse),
    ];
    println!("Fig. 14 / §3.6: Tier-1 = {tier1} pages, ratio 4, over-subscription 2\n");
    let mut table = Table::new(vec![
        "Application",
        "HMM vs BaM",
        "GMT-Reuse vs BaM",
        "GMT-Reuse vs HMM",
        "GMT-Reuse vs optimistic-HMM",
    ]);
    let (mut hmm_m, mut reuse_m, mut vs_hmm_m, mut vs_opt_m) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for p in prepared_suite(tier1, 4.0, 2.0) {
        let results = run_all(&p, &systems, seed);
        let (bam, hmm, reuse) = (&results[0], &results[1], &results[2]);
        let opt_elapsed =
            optimistic_hmm_elapsed(hmm, reuse, Dur::from_micros(130), Dur::from_micros(50));
        let hmm_speed = hmm.speedup_over(bam);
        let reuse_speed = reuse.speedup_over(bam);
        let vs_hmm = hmm.elapsed.as_secs_f64() / reuse.elapsed.as_secs_f64();
        let vs_opt = opt_elapsed.as_secs_f64() / reuse.elapsed.as_secs_f64();
        hmm_m.push(hmm_speed);
        reuse_m.push(reuse_speed);
        vs_hmm_m.push(vs_hmm);
        vs_opt_m.push(vs_opt);
        table.row(vec![
            bam.workload.clone(),
            fmt_ratio(hmm_speed),
            fmt_ratio(reuse_speed),
            fmt_ratio(vs_hmm),
            fmt_ratio(vs_opt),
        ]);
    }
    table.row(vec![
        "geo-mean".into(),
        fmt_ratio(geo_mean(hmm_m)),
        fmt_ratio(geo_mean(reuse_m)),
        fmt_ratio(geo_mean(vs_hmm_m)),
        fmt_ratio(geo_mean(vs_opt_m)),
    ]);
    gmt_analysis::table::emit(&table);
    println!("(paper: BaM outperforms HMM everywhere; GMT-Reuse is 357% faster than");
    println!(" HMM on average and still 90.3% faster than the optimistic HMM)");
}
