//! Regenerates Fig. 8a/8b: speedup over BaM and relative SSD I/O for the
//! three GMT policies at the default configuration (ratio 4, OS 2).
//!
//! Run with `cargo run -p gmt-bench --release --bin fig8`.

use gmt_analysis::runner::geo_mean;
use gmt_analysis::table::{fmt_ratio, Table};
use gmt_bench::{bench_seed, bench_tier1_pages, fig8_systems, prepared_suite, run_all};

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    let systems = fig8_systems();
    println!("Fig. 8a/8b: Tier-1 = {tier1} pages, Tier-2 = 4x, over-subscription 2\n");
    let mut speedups = Table::new(vec![
        "Application",
        "GMT-TierOrder",
        "GMT-Random",
        "GMT-Reuse",
    ]);
    let mut ios = Table::new(vec![
        "Application",
        "BaM SSD I/Os",
        "TierOrder I/O vs BaM",
        "Random I/O vs BaM",
        "Reuse I/O vs BaM",
    ]);
    let mut means = [Vec::new(), Vec::new(), Vec::new()];
    for p in prepared_suite(tier1, 4.0, 2.0) {
        let results = run_all(&p, &systems, seed);
        let (bam, rest) = results.split_first().expect("four systems");
        let mut speed_row = vec![bam.workload.clone()];
        let mut io_row = vec![bam.workload.clone(), bam.metrics.ssd_ios().to_string()];
        for (i, r) in rest.iter().enumerate() {
            let s = r.speedup_over(bam);
            means[i].push(s);
            speed_row.push(fmt_ratio(s));
            io_row.push(fmt_ratio(r.io_ratio_vs(bam)));
        }
        speedups.row(speed_row);
        ios.row(io_row);
    }
    speedups.row(vec![
        "geo-mean".into(),
        fmt_ratio(geo_mean(means[0].iter().copied())),
        fmt_ratio(geo_mean(means[1].iter().copied())),
        fmt_ratio(geo_mean(means[2].iter().copied())),
    ]);
    println!("Fig. 8a: speedup over BaM");
    gmt_analysis::table::emit(&speedups);
    println!("(paper averages: TierOrder 1.07x, Random 1.24x, Reuse 1.50x)\n");
    println!("Fig. 8b: SSD I/O relative to BaM (lower is better)");
    gmt_analysis::table::emit(&ios);
}
