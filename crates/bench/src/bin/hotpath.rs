//! Regenerates `BENCH_hotpath.json` and gates CI on it.
//!
//! ```text
//! hotpath [--quick] [--seed N] [--out PATH] [--baseline PATH]
//!         [--check PATH] [--tolerance FRACTION]
//! ```
//!
//! * `--out PATH` — write the rendered document (the repo commits
//!   `BENCH_hotpath.json` at the root).
//! * `--baseline PATH` — embed another run's scenario rows as the
//!   `baseline` block and report per-scenario speedups (used once per
//!   overhaul: measure before, embed after).
//! * `--check PATH` — compare this run against a committed document and
//!   exit non-zero if any scenario regresses beyond the tolerance
//!   (default 20 %) or its event count drifts.

use gmt_bench::hotpath::{
    check_regression, parse_scenarios, render_json, run_suite, validate_schema, Mode,
    DEFAULT_TOLERANCE,
};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = if args.iter().any(|a| a == "--quick") {
        Mode::Quick
    } else {
        Mode::Full
    };
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let tolerance: f64 = arg_value(&args, "--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TOLERANCE);

    let results = run_suite(mode, seed);
    println!("hotpath suite ({} mode, seed {seed}):", mode.name());
    for r in &results {
        println!(
            "  {:<16} {:>12} events  {:>10.2} ms  {:>14.0} events/sec",
            r.name,
            r.events,
            r.wall_ns as f64 / 1e6,
            r.events_per_sec
        );
    }

    let baseline_doc = arg_value(&args, "--baseline").map(|path| {
        let doc = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
        (path, doc)
    });
    let baseline_rows = baseline_doc.as_ref().map(|(path, doc)| {
        // Label by file name only: the baseline often lives in a
        // scratch directory that would be meaningless in the
        // committed document.
        let name = std::path::Path::new(path)
            .file_name()
            .map_or_else(|| path.clone(), |n| n.to_string_lossy().into_owned());
        (format!("pre-overhaul ({name})"), parse_scenarios(doc))
    });

    if let Some(out) = arg_value(&args, "--out") {
        let doc = render_json(
            mode,
            seed,
            &results,
            baseline_rows
                .as_ref()
                .map(|(label, rows)| (label.as_str(), rows.as_slice())),
        );
        validate_schema(&doc).expect("rendered document must validate");
        std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("writing {out}: {e}"));
        println!("wrote {out}");
    }

    if let Some(path) = arg_value(&args, "--check") {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading committed document {path}: {e}"));
        validate_schema(&committed).expect("committed document must validate");
        match check_regression(&results, &committed, tolerance) {
            Ok(()) => println!("check against {path}: within tolerance"),
            Err(report) => {
                eprintln!("hotpath regression vs {path}:\n{report}");
                std::process::exit(1);
            }
        }
    }
}
