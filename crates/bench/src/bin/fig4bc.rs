//! Regenerates Fig. 4b/4c: per-page RRD at successive Tier-1 evictions —
//! constant for MultiVectorAdd, alternating/patterned for PageRank.
//!
//! Run with `cargo run -p gmt-bench --release --bin fig4bc`.

use gmt_analysis::eviction_rrd_series;
use gmt_analysis::runner::geometry_for;
use gmt_analysis::table::{fmt_pct, Table};
use gmt_bench::{bench_seed, bench_tier1_pages};
use gmt_workloads::{multivectoradd::MultiVectorAdd, pagerank::PageRank, Workload, WorkloadScale};

/// Coefficient of variation of a page's eviction-time RRD sequence.
fn cv(rrds: &[u64]) -> f64 {
    let n = rrds.len() as f64;
    let mean = rrds.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = rrds.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    let scale = WorkloadScale::pages(tier1 * 10);
    let apps: Vec<Box<dyn Workload>> = vec![
        Box::new(MultiVectorAdd::with_scale(&scale)),
        Box::new(PageRank::with_scale(&scale)),
    ];
    println!("Fig. 4b/4c: RRD at Tier-1 evictions (Tier-1 = {tier1} pages)\n");
    let mut table = Table::new(vec![
        "Application",
        "pages with >=2 evictions",
        "constant-RRD pages (cv < 0.1)",
        "median cv",
    ]);
    for app in &apps {
        let geometry = geometry_for(app.as_ref(), 4.0, 2.0);
        let series = eviction_rrd_series(app.as_ref(), &geometry, seed, 2);
        let mut cvs: Vec<f64> = series.values().map(|v| cv(v)).collect();
        cvs.sort_by(|a, b| a.total_cmp(b));
        let constant = cvs.iter().filter(|&&c| c < 0.1).count();
        let median = cvs.get(cvs.len() / 2).copied().unwrap_or(0.0);
        table.row(vec![
            app.name().to_string(),
            series.len().to_string(),
            fmt_pct(constant as f64 / series.len().max(1) as f64),
            format!("{median:.3}"),
        ]);
    }
    gmt_analysis::table::emit(&table);
    println!("(paper: MultiVectorAdd pages repeat the same RRD every eviction;");
    println!(" PageRank RRDs are correlated with prior evictions but alternate,");
    println!(" motivating the 2-level history / Markov predictor)");
}
