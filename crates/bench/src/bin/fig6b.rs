//! Regenerates Fig. 6b: delivered bandwidth for Zipf-distributed page
//! accesses under the five transfer schemes.
//!
//! Run with `cargo run -p gmt-bench --release --bin fig6b`.
//!
//! Known deviation: in this substrate the employable-thread count for a
//! batch equals its missing lanes and copy warps suffer no SIMT
//! recruitment penalty, so Hybrid-8T can slightly edge out Hybrid-32T;
//! on real hardware divergence penalizes low-`X` hybrids and the paper
//! finds Hybrid-32T best. The qualitative message — hybrids track the
//! best pure method, zero-copy collapses at high skew, DMA is flat —
//! is reproduced.

use gmt_analysis::table::Table;
use gmt_bench::{bench_seed, zipf_delivered_bandwidth};
use gmt_pcie::TransferMethod;

fn main() {
    let seed = bench_seed();
    let pages = 4096u64;
    let iterations = 4000usize;
    println!("Fig. 6b: delivered bandwidth (GB/s) vs Zipf skew, 64 KB pages\n");
    let methods: Vec<(&str, TransferMethod)> = vec![
        ("ZeroCopy", TransferMethod::ZeroCopy),
        ("DmaAsync", TransferMethod::DmaAsync),
        ("Hybrid-8T", TransferMethod::hybrid(8)),
        ("Hybrid-16T", TransferMethod::hybrid(16)),
        ("Hybrid-32T", TransferMethod::hybrid_32t()),
    ];
    let mut headers = vec!["skew".to_string()];
    headers.extend(methods.iter().map(|(n, _)| n.to_string()));
    let mut table = Table::new(headers);
    for skew in [1.0f64, 0.9, 0.8, 0.6, 0.4, 0.2, 0.0] {
        let mut row = vec![format!("{skew:.1}")];
        for &(_, m) in &methods {
            let bw = zipf_delivered_bandwidth(m, skew, pages, iterations, seed);
            row.push(format!("{:.2}", bw / 1e9));
        }
        table.row(row);
    }
    gmt_analysis::table::emit(&table);
    println!("(paper: Hybrid-32T does, or is close to, the best across the range;");
    println!(" pure zero-copy suffers at high skew, pure DMA leaves bandwidth unused at low skew)");
}
