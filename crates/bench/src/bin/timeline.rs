//! Warm-up timeline: Tier-2 hit rate and prediction accuracy over the
//! course of one run, with the regression pipelined (the paper's design)
//! vs withheld until sampling ends (the alternative §2.1.3 argues
//! against).
//!
//! Run with `cargo run -p gmt-bench --release --bin timeline`.

use gmt_analysis::runner::geometry_for;
use gmt_analysis::table::{fmt_pct, Table};
use gmt_analysis::timeline::run_gmt_timeline;
use gmt_analysis::tracesum::{run_gmt_traced, summarize_windows};
use gmt_bench::{bench_seed, bench_tier1_pages};
use gmt_core::GmtConfig;
use gmt_gpu::ExecutorConfig;
use gmt_workloads::{synthetic::ZipfLoop, WorkloadScale};

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    // A skewed point-access loop: hot pages re-touch constantly, so VTD
    // (non-unique) wildly overestimates RD (unique) and the regression's
    // correction is what unlocks Tier-2 placement. Exactly the situation
    // the pipelined design helps early.
    let workload = ZipfLoop::new(&WorkloadScale::pages(tier1 * 10), 0.8, 0.1, tier1 * 80);
    let geometry = geometry_for(&workload, 4.0, 2.0);
    println!(
        "Warm-up timeline on a Zipf(0.8) loop (Tier-1 = {} pages)\n",
        geometry.tier1_pages
    );

    let mut piped_cfg = GmtConfig::new(geometry);
    piped_cfg.reuse.sampler.pipelined = true;
    let mut held_cfg = GmtConfig::new(geometry);
    held_cfg.reuse.sampler.pipelined = false;
    let exec = ExecutorConfig::default();
    let snapshots = 10;
    let piped = run_gmt_timeline(&workload, &piped_cfg, &exec, seed, snapshots);
    let held = run_gmt_timeline(&workload, &held_cfg, &exec, seed, snapshots);

    let mut table = Table::new(vec![
        "accesses",
        "pipelined T2 hit rate",
        "withheld T2 hit rate",
        "pipelined pred. accuracy",
        "withheld pred. accuracy",
    ]);
    for (p, h) in piped.iter().zip(&held) {
        table.row(vec![
            p.accesses.to_string(),
            fmt_pct(p.metrics.t2_hit_rate()),
            fmt_pct(h.metrics.t2_hit_rate()),
            fmt_pct(p.metrics.prediction_accuracy()),
            fmt_pct(h.metrics.prediction_accuracy()),
        ]);
    }
    gmt_analysis::table::emit(&table);
    println!("(paper §2.1.3: pipelining samples every 10 000 to the CPU \"results in");
    println!(" better placement for the early part of the execution\")");

    // The same warm-up, seen from the decision trace: tier occupancy and
    // peak SSD queue depth per window of the pipelined run.
    let run = run_gmt_traced(&workload, &piped_cfg, seed, 1 << 21);
    let width = (run.elapsed / snapshots as u64).max(gmt_sim::Dur::from_nanos(1));
    println!("\nTier occupancy over time (trace-derived, pipelined config):");
    let mut occupancy = Table::new(vec![
        "window start (us)",
        "T1 pages",
        "T2 pages",
        "peak SSD depth",
    ]);
    for w in summarize_windows(&run.records, width) {
        occupancy.row(vec![
            (w.start_ns / 1_000).to_string(),
            w.t1_occupancy.to_string(),
            w.t2_occupancy.to_string(),
            w.max_queue_depth.to_string(),
        ]);
    }
    gmt_analysis::table::emit(&occupancy);
    if run.dropped > 0 {
        println!(
            "(trace ring dropped {} early records; windows cover the tail)",
            run.dropped
        );
    }
}
