//! Regenerates Fig. 4a: VTD vs reuse-distance correlation for
//! MultiVectorAdd and PageRank.
//!
//! Run with `cargo run -p gmt-bench --release --bin fig4a`.

use gmt_analysis::table::Table;
use gmt_analysis::{correlation, vtd_rd_pairs};
use gmt_bench::{bench_seed, bench_tier1_pages};
use gmt_reuse::Ols;
use gmt_workloads::{multivectoradd::MultiVectorAdd, pagerank::PageRank, Workload, WorkloadScale};

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    let scale = WorkloadScale::pages(tier1 * 10);
    let apps: Vec<Box<dyn Workload>> = vec![
        Box::new(MultiVectorAdd::with_scale(&scale)),
        Box::new(PageRank::with_scale(&scale)),
    ];
    println!("Fig. 4a: VTD vs reuse distance (Tier-1 = {tier1} pages)\n");
    let mut table = Table::new(vec![
        "Application",
        "pairs",
        "Pearson r",
        "OLS slope m",
        "OLS offset b",
    ]);
    for app in &apps {
        let pairs = vtd_rd_pairs(app.as_ref(), seed, 200_000);
        let r = correlation(&pairs);
        let mut ols = Ols::new();
        for &(x, y) in &pairs {
            ols.add(x as f64, y as f64);
        }
        // A workload with perfectly constant reuse distances (MVA's
        // signature) has zero VTD variance: the relation is a single
        // point and any slope through it is exact.
        let (slope, intercept) = match ols.fit() {
            Some(fit) => (format!("{:.4}", fit.slope), format!("{:.1}", fit.intercept)),
            None => ("degenerate".into(), "(constant VTD)".into()),
        };
        table.row(vec![
            app.name().to_string(),
            pairs.len().to_string(),
            format!("{r:.4}"),
            slope,
            intercept,
        ]);
    }
    gmt_analysis::table::emit(&table);
    println!("(paper: a good linear correlation in both applications,");
    println!(" justifying RD = m*VTD + b as the regression model)");
}
