//! Miss-ratio-curve analysis: for every workload, the LRU miss ratio at
//! the Tier-1 and Tier-1+Tier-2 capacities — the quantitative version of
//! Fig. 7's "where does the reuse fall" picture, plus the capacity each
//! app would need for a 50 % miss ratio.
//!
//! Run with `cargo run -p gmt-bench --release --bin mrc`.

use gmt_analysis::table::{fmt_pct, Table};
use gmt_bench::{bench_seed, bench_tier1_pages, prepared_suite};
use gmt_reuse::mrc::MissRatioCurve;

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    println!("Miss-ratio curves (Tier-1 = {tier1} pages, ratio 4, OS 2)\n");
    let mut table = Table::new(vec![
        "Application",
        "miss @ |T1|",
        "miss @ |T1|+|T2|",
        "capacity for 50% miss",
    ]);
    for p in prepared_suite(tier1, 4.0, 2.0) {
        let touches = p
            .workload
            .trace(seed)
            .into_iter()
            .flat_map(|a| a.pages.iter().collect::<Vec<_>>());
        let mrc = MissRatioCurve::from_trace(touches);
        let t1 = p.geometry.tier1_pages;
        let t12 = t1 + p.geometry.tier2_pages;
        table.row(vec![
            p.workload.name().to_string(),
            fmt_pct(mrc.miss_ratio(t1)),
            fmt_pct(mrc.miss_ratio(t12)),
            mrc.capacity_for(0.5)
                .map_or("unreachable".into(), |c| c.to_string()),
        ]);
    }
    gmt_analysis::table::emit(&table);
    println!("The gap between the two columns is the ceiling on what any Tier-2");
    println!("policy can recover; GMT-Reuse's Fig. 8 speedups track it.");
}
