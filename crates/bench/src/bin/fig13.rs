//! Regenerates Fig. 13: the larger-Tier-1 experiment (paper: Tier-1 =
//! 32 GB instead of 16 GB, datasets doubled, non-graph applications).
//!
//! At simulation scale this doubles `GMT_T1_PAGES` and the dataset while
//! keeping over-subscription 2.
//!
//! Run with `cargo run -p gmt-bench --release --bin fig13`.

use gmt_analysis::runner::{geo_mean, geometry_for, run_system};
use gmt_analysis::table::{fmt_ratio, Table};
use gmt_bench::{bench_seed, bench_tier1_pages, fig8_systems};
use gmt_workloads::{non_graph_suite, WorkloadScale};

fn main() {
    let tier1 = bench_tier1_pages() * 2;
    let seed = bench_seed();
    let systems = fig8_systems();
    println!("Fig. 13: doubled Tier-1 ({tier1} pages), ratio 4, over-subscription 2,");
    println!("non-graph applications\n");
    let scale = WorkloadScale::pages(tier1 * 10);
    let mut table = Table::new(vec![
        "Application",
        "GMT-TierOrder",
        "GMT-Random",
        "GMT-Reuse",
    ]);
    let mut means = [Vec::new(), Vec::new(), Vec::new()];
    for workload in non_graph_suite(&scale) {
        let geometry = geometry_for(workload.as_ref(), 4.0, 2.0);
        let bam = run_system(workload.as_ref(), systems[0], &geometry, seed);
        let mut row = vec![bam.workload.clone()];
        for (i, &system) in systems[1..].iter().enumerate() {
            let r = run_system(workload.as_ref(), system, &geometry, seed);
            let s = r.speedup_over(&bam);
            means[i].push(s);
            row.push(fmt_ratio(s));
        }
        table.row(row);
    }
    table.row(vec![
        "geo-mean".into(),
        fmt_ratio(geo_mean(means[0].iter().copied())),
        fmt_ratio(geo_mean(means[1].iter().copied())),
        fmt_ratio(geo_mean(means[2].iter().copied())),
    ]);
    gmt_analysis::table::emit(&table);
    println!("(paper: GMT-Reuse keeps a ~45% average speedup at the larger Tier-1,");
    println!(" beating Random by ~20% and TierOrder by ~35%)");
}
