//! Regenerates Table 2: per-application reuse % and total demanded I/O.
//!
//! Run with `cargo run -p gmt-bench --release --bin tab2`.

use gmt_analysis::characterize;
use gmt_analysis::table::{fmt_pct, Table};
use gmt_bench::{bench_seed, bench_tier1_pages, prepared_suite};

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    println!("Table 2: application characteristics (Tier-1 = {tier1} pages, ratio 4, OS 2)\n");
    let mut table = Table::new(vec![
        "Application",
        "Reuse % of a Page",
        "Demand I/O (GB)",
        "Dominant RRD tier",
    ]);
    for p in prepared_suite(tier1, 4.0, 2.0) {
        let c = characterize(p.workload.as_ref(), &p.geometry, seed);
        table.row(vec![
            c.name.clone(),
            fmt_pct(c.reuse_pct),
            format!("{:.2}", c.demand_bytes as f64 / 1e9),
            c.dominant_tier().to_string(),
        ]);
    }
    gmt_analysis::table::emit(&table);
    println!("(paper: lavaMD 1.17%, Pathfinder 19.47%, BFS 32.86%, MultiVectorAdd 40.0%,");
    println!(" Srad 83.38%, Backprop 93.54%, PageRank 90.42%, SSSP 79.96%, Hotspot 81.33%)");
}
