//! Regenerates Fig. 9: GMT-Reuse tier-prediction accuracy per
//! application (for the Fig. 8 configuration).
//!
//! Run with `cargo run -p gmt-bench --release --bin fig9`.

use gmt_analysis::runner::{run_system, SystemKind};
use gmt_analysis::table::{fmt_pct, Table};
use gmt_bench::{bench_seed, bench_tier1_pages, prepared_suite};
use gmt_core::PolicyKind;

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    println!("Fig. 9: GMT-Reuse prediction accuracy (Tier-1 = {tier1} pages, ratio 4, OS 2)\n");
    let mut table = Table::new(vec!["Application", "graded predictions", "accuracy"]);
    for p in prepared_suite(tier1, 4.0, 2.0) {
        let r = run_system(
            p.workload.as_ref(),
            SystemKind::Gmt(PolicyKind::Reuse),
            &p.geometry,
            seed,
        );
        table.row(vec![
            r.workload.clone(),
            r.metrics.predictions.to_string(),
            fmt_pct(r.metrics.prediction_accuracy()),
        ]);
    }
    gmt_analysis::table::emit(&table);
    println!("(paper: high accuracy on reuse-heavy apps; lavaMD low — too little");
    println!(" history accumulates before its few reused pages are evicted)");
}
