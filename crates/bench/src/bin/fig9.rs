//! Regenerates Fig. 9: GMT-Reuse tier-prediction accuracy per
//! application (for the Fig. 8 configuration).
//!
//! Run with `cargo run -p gmt-bench --release --bin fig9`.

use gmt_analysis::runner::{geometry_for, run_system, SystemKind};
use gmt_analysis::table::{fmt_pct, Table};
use gmt_analysis::tracesum::{prediction_accuracy_over_time, run_gmt_traced};
use gmt_bench::{bench_seed, bench_tier1_pages, prepared_suite};
use gmt_core::{GmtConfig, PolicyKind};
use gmt_workloads::{synthetic::ZipfLoop, WorkloadScale};

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    println!("Fig. 9: GMT-Reuse prediction accuracy (Tier-1 = {tier1} pages, ratio 4, OS 2)\n");
    let mut table = Table::new(vec!["Application", "graded predictions", "accuracy"]);
    for p in prepared_suite(tier1, 4.0, 2.0) {
        let r = run_system(
            p.workload.as_ref(),
            SystemKind::Gmt(PolicyKind::Reuse),
            &p.geometry,
            seed,
        );
        table.row(vec![
            r.workload.clone(),
            r.metrics.predictions.to_string(),
            fmt_pct(r.metrics.prediction_accuracy()),
        ]);
    }
    gmt_analysis::table::emit(&table);
    println!("(paper: high accuracy on reuse-heavy apps; lavaMD low — too little");
    println!(" history accumulates before its few reused pages are evicted)");

    // Intra-run view from the decision trace: how fast the predictor
    // converges on a skewed loop (end-of-run numbers hide the warm-up).
    let workload = ZipfLoop::new(&WorkloadScale::pages(tier1 * 10), 0.8, 0.1, tier1 * 80);
    let config = GmtConfig::new(geometry_for(&workload, 4.0, 2.0));
    let run = run_gmt_traced(&workload, &config, seed, 1 << 21);
    let width = (run.elapsed / 10).max(gmt_sim::Dur::from_nanos(1));
    println!("\nPrediction accuracy over time, Zipf(0.8) loop (trace-derived):");
    let mut over_time = Table::new(vec!["window start (us)", "graded", "accuracy"]);
    for (start_ns, graded, accuracy) in prediction_accuracy_over_time(&run.records, width) {
        over_time.row(vec![
            (start_ns / 1_000).to_string(),
            graded.to_string(),
            fmt_pct(accuracy),
        ]);
    }
    gmt_analysis::table::emit(&over_time);
    if run.dropped > 0 {
        println!(
            "(trace ring dropped {} early records; windows cover the tail)",
            run.dropped
        );
    }
}
