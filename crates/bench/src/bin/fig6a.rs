//! Regenerates Fig. 6a: transfer efficiency for non-contiguous page
//! batches — `cudaMemcpyAsync` (DMA) vs warp zero-copy.
//!
//! Run with `cargo run -p gmt-bench --release --bin fig6a`.

use gmt_analysis::table::Table;
use gmt_bench::batch_transfer_bandwidth;
use gmt_pcie::TransferMethod;

fn main() {
    println!("Fig. 6a: achieved bandwidth moving N non-contiguous 64 KB pages\n");
    let mut table = Table::new(vec![
        "pages",
        "cudaMemcpyAsync (GB/s)",
        "zero-copy 32T (GB/s)",
    ]);
    let mut crossover = None;
    for n in [1usize, 2, 4, 6, 8, 10, 12, 16, 24, 32, 48, 64] {
        let dma = batch_transfer_bandwidth(TransferMethod::DmaAsync, n);
        let zc = batch_transfer_bandwidth(TransferMethod::ZeroCopy, n);
        if crossover.is_none() && zc >= dma {
            crossover = Some(n);
        }
        table.row(vec![
            n.to_string(),
            format!("{:.2}", dma / 1e9),
            format!("{:.2}", zc / 1e9),
        ]);
    }
    gmt_analysis::table::emit(&table);
    match crossover {
        Some(n) => println!("crossover at ~{n} pages (paper: 8)"),
        None => println!("no crossover observed (paper: 8) — calibration drift!"),
    }
}
