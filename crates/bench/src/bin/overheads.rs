//! The §3.4 overhead accounting: what adding Tier-2 costs (wasteful
//! lookups, placement transfers) against what it saves, per application.
//! The paper prices the costs at ~2.41% of execution on average.
//!
//! Run with `cargo run -p gmt-bench --release --bin overheads`.

use gmt_analysis::runner::{run_system, SystemKind};
use gmt_analysis::table::{fmt_pct, Table};
use gmt_bench::{bench_seed, bench_tier1_pages, prepared_suite};
use gmt_core::{GmtConfig, PolicyKind};

fn main() {
    let tier1 = bench_tier1_pages();
    let seed = bench_seed();
    println!("§3.4 Tier-2 overhead accounting (Tier-1 = {tier1} pages, ratio 4, OS 2)\n");
    let lookup_ns = GmtConfig::default().host_link.lookup_cost.as_nanos();
    let mut table = Table::new(vec![
        "Application",
        "wasteful lookups",
        "lookup time / runtime",
        "T1->T2 placements",
    ]);
    let mut fractions = Vec::new();
    for p in prepared_suite(tier1, 4.0, 2.0) {
        let r = run_system(
            p.workload.as_ref(),
            SystemKind::Gmt(PolicyKind::Reuse),
            &p.geometry,
            seed,
        );
        // Wasteful lookups cost ~50 ns of critical-path work each; warp
        // concurrency hides most of it, so this is an upper bound.
        let lookup_time_ns = r.metrics.wasteful_lookups * lookup_ns;
        let fraction = lookup_time_ns as f64 / r.elapsed.as_nanos() as f64;
        fractions.push(fraction);
        table.row(vec![
            r.workload.clone(),
            r.metrics.wasteful_lookups.to_string(),
            fmt_pct(fraction),
            r.metrics.t2_placements.to_string(),
        ]);
    }
    gmt_analysis::table::emit(&table);
    let mean = fractions.iter().sum::<f64>() / fractions.len().max(1) as f64;
    println!("mean lookup-time share: {}", fmt_pct(mean));
    println!("(paper: all Tier-2 costs together amount to ~2.41% of execution,");
    println!(" dwarfed by the I/O reduction they buy)");
}
