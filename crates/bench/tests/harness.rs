//! Regression tests for the committed bench harness itself: the quick
//! suite must run, produce schema-valid JSON, and be event-deterministic
//! across whole-suite runs — the property that makes `--check`'s
//! event-count comparison meaningful.

use gmt_bench::hotpath::{
    check_regression, parse_scenarios, render_json, run_suite, validate_schema, CommittedScenario,
    Mode, DEFAULT_TOLERANCE, SCHEMA,
};

#[test]
fn quick_suite_runs_and_renders_valid_json() {
    let results = run_suite(Mode::Quick, 7);
    assert_eq!(results.len(), 7, "one row per scenario");
    for r in &results {
        assert!(r.events > 0, "{}: no events", r.name);
        assert!(r.events_per_sec > 0.0, "{}: no rate", r.name);
        assert_eq!(r.seed, 7);
    }
    let doc = render_json(Mode::Quick, 7, &results, None);
    validate_schema(&doc).expect("fresh render must validate");
    assert!(doc.contains(SCHEMA));
    let rows = parse_scenarios(&doc);
    assert_eq!(rows.len(), results.len());
    for (row, r) in rows.iter().zip(&results) {
        assert_eq!(row.name, r.name);
        assert_eq!(row.events, r.events);
    }
}

#[test]
fn whole_suite_event_counts_are_deterministic_across_runs() {
    let a = run_suite(Mode::Quick, 1);
    let b = run_suite(Mode::Quick, 1);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(
            x.events, y.events,
            "{}: virtual event count must not depend on the run",
            x.name
        );
    }
    // And a fresh run passes the regression gate against its own render
    // (wall-time jitter is absorbed by the tolerance; counts are exact).
    let doc = render_json(Mode::Quick, 1, &a, None);
    check_regression(&b, &doc, 0.75).expect("same-build run passes a loose gate");
}

#[test]
fn different_seeds_change_events_but_not_the_schema() {
    let a = run_suite(Mode::Quick, 1);
    let b = run_suite(Mode::Quick, 2);
    // Seeded scenarios must actually respond to the seed somewhere
    // (arrival jitter, zipf draws); scan-only scenarios may tie.
    assert!(
        a.iter().zip(&b).any(|(x, y)| x.events != y.events),
        "seed must reach the workloads"
    );
    let doc = render_json(Mode::Quick, 2, &b, None);
    validate_schema(&doc).expect("seed-2 render validates");
}

#[test]
fn baseline_block_embeds_speedups() {
    let results = run_suite(Mode::Quick, 1);
    let base: Vec<CommittedScenario> = results
        .iter()
        .map(|r| CommittedScenario {
            name: r.name.into(),
            events: r.events,
            events_per_sec: r.events_per_sec / 2.0,
        })
        .collect();
    let doc = render_json(Mode::Quick, 1, &results, Some(("pre-overhaul", &base)));
    validate_schema(&doc).expect("render with baseline validates");
    assert!(doc.contains("\"speedup_vs_baseline\""));
    assert!(doc.contains("\"x\": 2.00"), "{doc}");
    // The baseline block must not be parsed as current rows.
    assert_eq!(parse_scenarios(&doc).len(), results.len());
    check_regression(&results, &doc, DEFAULT_TOLERANCE).expect("self-comparison passes");
}
