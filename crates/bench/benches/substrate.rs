//! Micro-benchmarks of the substrate data structures: the structures the
//! GPU-side runtime exercises on every access must be cheap, and these
//! benches guard their costs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gmt_mem::{ClockList, FifoCache, PageId};
use gmt_reuse::{MarkovPredictor, Ols, ReuseTracker};
use gmt_sim::{Time, Zipf};
use gmt_ssd::{SsdConfig, SsdDevice};
use rand::Rng;
use std::hint::black_box;

fn bench_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("clock");
    group.bench_function("touch_hit", |b| {
        let mut clock = ClockList::new(4096);
        for p in 0..4096 {
            clock.insert(PageId(p));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            black_box(clock.touch(PageId(i)))
        });
    });
    group.bench_function("replace_candidate", |b| {
        let mut clock = ClockList::new(4096);
        for p in 0..4096 {
            clock.insert(PageId(p));
        }
        let mut next = 4096u64;
        b.iter(|| {
            next += 1;
            black_box(clock.replace_candidate(PageId(next)))
        });
    });
    group.finish();
}

fn bench_fifo(c: &mut Criterion) {
    c.bench_function("fifo/insert_evicting", |b| {
        let mut cache = FifoCache::new(4096);
        let mut next = 0u64;
        b.iter(|| {
            next += 1;
            black_box(cache.insert_evicting(PageId(next)))
        });
    });
}

fn bench_olken(c: &mut Criterion) {
    c.bench_function("olken/record_zipf_stream", |b| {
        let zipf = Zipf::new(1 << 16, 0.8);
        let mut rng = gmt_sim::rng::seeded(3);
        b.iter_batched(
            ReuseTracker::new,
            |mut tracker| {
                for _ in 0..1_000 {
                    tracker.record(PageId(zipf.sample(&mut rng)));
                }
                tracker
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_ssd(c: &mut Criterion) {
    c.bench_function("ssd/submit_page_read", |b| {
        let mut ssd = SsdDevice::new(SsdConfig::default());
        let mut offset = 0u64;
        b.iter(|| {
            offset += 65_536;
            black_box(ssd.read(Time::ZERO, offset, 65_536))
        });
    });
}

fn bench_predictors(c: &mut Criterion) {
    c.bench_function("markov/reinforce_and_predict", |b| {
        let mut markov = MarkovPredictor::new();
        let mut rng = gmt_sim::rng::seeded(9);
        b.iter(|| {
            let from = gmt_mem::Tier::from_index(rng.gen_range(0..3));
            let to = gmt_mem::Tier::from_index(rng.gen_range(0..3));
            markov.reinforce(from, to);
            black_box(markov.predict(from))
        });
    });
    c.bench_function("ols/add_sample", |b| {
        let mut ols = Ols::new();
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1.0;
            ols.add(x, 2.0 * x + 1.0);
            black_box(ols.samples())
        });
    });
}

criterion_group!(
    benches,
    bench_clock,
    bench_fifo,
    bench_olken,
    bench_ssd,
    bench_predictors
);
criterion_main!(benches);
