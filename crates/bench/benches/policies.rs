//! Criterion benches over the tiering systems themselves: one
//! representative workload per reuse class, all four systems (the Fig. 8
//! comparison under a timing harness at reduced scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmt_analysis::runner::{geometry_for, run_system, SystemKind};
use gmt_core::{Gmt, GmtConfig, PolicyKind};
use gmt_gpu::{Executor, ExecutorConfig};
use gmt_workloads::{hotspot::Hotspot, lavamd::LavaMd, srad::Srad, Workload, WorkloadScale};
use std::hint::black_box;

fn bench_systems(c: &mut Criterion) {
    let scale = WorkloadScale::pages(800);
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(LavaMd::with_scale(&scale)),  // Tier-1 biased
        Box::new(Srad::with_scale(&scale)),    // Tier-2 biased
        Box::new(Hotspot::with_scale(&scale)), // Tier-3 biased
    ];
    let systems = [
        SystemKind::Bam,
        SystemKind::Hmm,
        SystemKind::Gmt(PolicyKind::TierOrder),
        SystemKind::Gmt(PolicyKind::Random),
        SystemKind::Gmt(PolicyKind::Reuse),
    ];
    let mut group = c.benchmark_group("systems");
    group.sample_size(10);
    for workload in &workloads {
        let geometry = geometry_for(workload.as_ref(), 4.0, 2.0);
        for system in systems {
            group.bench_with_input(
                BenchmarkId::new(system.name(), workload.name()),
                &system,
                |b, &system| {
                    b.iter(|| black_box(run_system(workload.as_ref(), system, &geometry, 1)))
                },
            );
        }
    }
    group.finish();
}

/// Decision-trace overhead, interleaved in one process so the two cases
/// see the same machine state: tracing off must stay within noise of the
/// plain run (it costs one branch per would-be event), tracing on shows
/// the full recording cost.
fn bench_tracing_overhead(c: &mut Criterion) {
    let workload = Hotspot::with_scale(&WorkloadScale::pages(800));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let accesses = workload.trace(1);
    let exec = Executor::new(ExecutorConfig::default());
    let mut group = c.benchmark_group("tracing");
    group.sample_size(10);
    group.bench_function("disabled", |b| {
        b.iter(|| {
            let gmt = Gmt::new(GmtConfig::new(geometry));
            black_box(exec.run(gmt, accesses.iter().cloned()))
        })
    });
    group.bench_function("enabled", |b| {
        b.iter(|| {
            let mut gmt = Gmt::new(GmtConfig::new(geometry));
            let sink = gmt.enable_tracing(1 << 22);
            let out = exec.run(gmt, accesses.iter().cloned());
            black_box((out, sink.len()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_systems, bench_tracing_overhead);
criterion_main!(benches);
