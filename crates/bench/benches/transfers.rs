//! Benches regenerating the Fig. 6 transfer micro-benchmarks under
//! Criterion timing (the figure *values* come from the `fig6a`/`fig6b`
//! binaries; these benches keep the models' host-side cost visible).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmt_bench::{batch_transfer_bandwidth, zipf_delivered_bandwidth};
use gmt_pcie::TransferMethod;
use std::hint::black_box;

fn bench_fig6a_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a");
    for n in [1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("dma", n), &n, |b, &n| {
            b.iter(|| black_box(batch_transfer_bandwidth(TransferMethod::DmaAsync, n)))
        });
        group.bench_with_input(BenchmarkId::new("zero_copy", n), &n, |b, &n| {
            b.iter(|| black_box(batch_transfer_bandwidth(TransferMethod::ZeroCopy, n)))
        });
    }
    group.finish();
}

fn bench_fig6b_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6b");
    group.sample_size(10);
    for skew in [0.0f64, 0.99] {
        group.bench_with_input(
            BenchmarkId::new("hybrid32", format!("{skew:.2}")),
            &skew,
            |b, &skew| {
                b.iter(|| {
                    black_box(zipf_delivered_bandwidth(
                        TransferMethod::hybrid_32t(),
                        skew,
                        4096,
                        500,
                        3,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6a_points, bench_fig6b_points);
criterion_main!(benches);
