//! Ablation benches for the design choices DESIGN.md calls out: the
//! Tier-3-pressure bypass threshold (§2.2), the Tier-2 insertion mode,
//! the transfer method, and the sampling batch size.
//!
//! Each bench's *measured time is the simulated run's host cost*; the
//! interesting output is printed once per configuration (simulated
//! speedup), so `cargo bench -p gmt-bench --bench ablations` doubles as a
//! quick ablation report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmt_analysis::runner::{geometry_for, run_system, run_system_with, SystemKind};
use gmt_baselines::{Hmm, HmmConfig};
use gmt_core::{GmtConfig, MarkovScope, PolicyKind, PredictorKind, Tier2Insert};
use gmt_gpu::{Executor, ExecutorConfig};
use gmt_pcie::TransferMethod;
use gmt_reuse::SamplerConfig;
use gmt_workloads::{hotspot::Hotspot, srad::Srad, Workload, WorkloadScale};
use std::hint::black_box;

fn bench_bypass_threshold(c: &mut Criterion) {
    let workload = Hotspot::with_scale(&WorkloadScale::pages(800));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let mut group = c.benchmark_group("ablate_bypass");
    group.sample_size(10);
    for threshold in [0.5f64, 0.8, 0.95, 1.1] {
        let mut config = GmtConfig::new(geometry);
        config.reuse.bypass_threshold = threshold;
        let r = run_system_with(&workload, SystemKind::Gmt(PolicyKind::Reuse), &config, 1);
        println!(
            "ablate_bypass threshold={threshold:.2}: elapsed {} forced {}",
            r.elapsed, r.metrics.forced_t2_placements
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threshold:.2}")),
            &config,
            |b, config| {
                b.iter(|| {
                    black_box(run_system_with(
                        &workload,
                        SystemKind::Gmt(PolicyKind::Reuse),
                        config,
                        1,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_tier2_insert_mode(c: &mut Criterion) {
    let workload = Srad::with_scale(&WorkloadScale::pages(800));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let mut group = c.benchmark_group("ablate_tier2_insert");
    group.sample_size(10);
    for (name, mode) in [
        ("reject_when_full", Tier2Insert::RejectWhenFull),
        ("evict_fifo", Tier2Insert::EvictFifo),
        ("evict_clock", Tier2Insert::EvictClock),
        ("evict_random", Tier2Insert::EvictRandom),
    ] {
        let mut config = GmtConfig::new(geometry);
        config.tier2_insert = Some(mode);
        let r = run_system_with(&workload, SystemKind::Gmt(PolicyKind::Reuse), &config, 1);
        println!(
            "ablate_tier2_insert {name}: elapsed {} t2_hits {}",
            r.elapsed, r.metrics.t2_hits
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                black_box(run_system_with(
                    &workload,
                    SystemKind::Gmt(PolicyKind::Reuse),
                    config,
                    1,
                ))
            })
        });
    }
    group.finish();
}

fn bench_transfer_method(c: &mut Criterion) {
    let workload = Srad::with_scale(&WorkloadScale::pages(800));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let mut group = c.benchmark_group("ablate_transfer");
    group.sample_size(10);
    for (name, method) in [
        ("dma", TransferMethod::DmaAsync),
        ("zero_copy", TransferMethod::ZeroCopy),
        ("hybrid_32t", TransferMethod::hybrid_32t()),
    ] {
        let config = GmtConfig {
            transfer: method,
            ..GmtConfig::new(geometry)
        };
        let r = run_system_with(&workload, SystemKind::Gmt(PolicyKind::Reuse), &config, 1);
        println!("ablate_transfer {name}: elapsed {}", r.elapsed);
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                black_box(run_system_with(
                    &workload,
                    SystemKind::Gmt(PolicyKind::Reuse),
                    config,
                    1,
                ))
            })
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let workload = Srad::with_scale(&WorkloadScale::pages(800));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let mut group = c.benchmark_group("ablate_sampling");
    group.sample_size(10);
    for (name, sampler) in [
        (
            "tiny_budget",
            SamplerConfig {
                sample_budget: 1_000,
                batch_size: 100,
                pipelined: true,
            },
        ),
        (
            "end_of_sampling",
            SamplerConfig {
                pipelined: false,
                ..SamplerConfig::default()
            },
        ),
        ("paper_default", SamplerConfig::default()),
    ] {
        let mut config = GmtConfig::new(geometry);
        config.reuse.sampler = sampler;
        let r = run_system_with(&workload, SystemKind::Gmt(PolicyKind::Reuse), &config, 1);
        println!(
            "ablate_sampling {name}: elapsed {} accuracy {:.3}",
            r.elapsed,
            r.metrics.prediction_accuracy()
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                black_box(run_system_with(
                    &workload,
                    SystemKind::Gmt(PolicyKind::Reuse),
                    config,
                    1,
                ))
            })
        });
    }
    group.finish();
}

fn bench_prefetch(c: &mut Criterion) {
    // Hotspot streams sequentially: the best case for the prefetching
    // extension (the paper's runtime is demand-only).
    let workload = Hotspot::with_scale(&WorkloadScale::pages(800));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let mut group = c.benchmark_group("ablate_prefetch");
    group.sample_size(10);
    for degree in [0usize, 2, 8] {
        let mut config = GmtConfig::new(geometry);
        config.prefetch_degree = degree;
        let r = run_system_with(&workload, SystemKind::Gmt(PolicyKind::Reuse), &config, 1);
        println!(
            "ablate_prefetch degree={degree}: elapsed {} prefetches {} t1_hit {:.3}",
            r.elapsed,
            r.metrics.prefetches,
            r.metrics.t1_hit_rate()
        );
        group.bench_with_input(BenchmarkId::from_parameter(degree), &config, |b, config| {
            b.iter(|| {
                black_box(run_system_with(
                    &workload,
                    SystemKind::Gmt(PolicyKind::Reuse),
                    config,
                    1,
                ))
            })
        });
    }
    group.finish();
}

fn bench_markov_scope(c: &mut Criterion) {
    let workload = Srad::with_scale(&WorkloadScale::pages(800));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let mut group = c.benchmark_group("ablate_markov");
    group.sample_size(10);
    for (name, scope) in [
        ("global", MarkovScope::Global),
        ("per_page", MarkovScope::PerPage),
    ] {
        let mut config = GmtConfig::new(geometry);
        config.reuse.markov_scope = scope;
        let r = run_system_with(&workload, SystemKind::Gmt(PolicyKind::Reuse), &config, 1);
        println!(
            "ablate_markov {name}: elapsed {} accuracy {:.3}",
            r.elapsed,
            r.metrics.prediction_accuracy()
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                black_box(run_system_with(
                    &workload,
                    SystemKind::Gmt(PolicyKind::Reuse),
                    config,
                    1,
                ))
            })
        });
    }
    group.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let workload = Srad::with_scale(&WorkloadScale::pages(800));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let mut group = c.benchmark_group("ablate_predictor");
    group.sample_size(10);
    for (name, kind) in [
        ("markov", PredictorKind::Markov),
        ("last_tier", PredictorKind::LastTier),
        ("always_host", PredictorKind::AlwaysHost),
    ] {
        let mut config = GmtConfig::new(geometry);
        config.reuse.predictor = kind;
        let r = run_system_with(&workload, SystemKind::Gmt(PolicyKind::Reuse), &config, 1);
        println!(
            "ablate_predictor {name}: elapsed {} accuracy {:.3}",
            r.elapsed,
            r.metrics.prediction_accuracy()
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                black_box(run_system_with(
                    &workload,
                    SystemKind::Gmt(PolicyKind::Reuse),
                    config,
                    1,
                ))
            })
        });
    }
    group.finish();
}

fn bench_hmm_generosity(c: &mut Criterion) {
    // How much driver optimism does HMM need to catch BaM? Sweep fault
    // batching and UVM-style migration chunking; even the generous
    // configurations stay behind (the §3.6 conclusion).
    let workload = Srad::with_scale(&WorkloadScale::pages(800));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let bam = run_system(&workload, SystemKind::Bam, &geometry, 1);
    let mut group = c.benchmark_group("ablate_hmm");
    group.sample_size(10);
    for (name, batch, chunk) in [
        ("stock", 1u32, 1usize),
        ("batched_drain", 8, 1),
        ("chunked_migration", 1, 8),
        ("both", 8, 8),
    ] {
        let mut config = HmmConfig::new(geometry);
        config.fault_batch = batch;
        config.migration_chunk_pages = chunk;
        let trace = workload.trace(1);
        let out =
            Executor::new(ExecutorConfig::default()).run(Hmm::new(config), trace.iter().cloned());
        println!(
            "ablate_hmm {name}: elapsed {} ({}x of BaM's {})",
            out.elapsed,
            out.elapsed.as_secs_f64() / bam.elapsed.as_secs_f64(),
            bam.elapsed
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            let trace = workload.trace(1);
            b.iter(|| {
                black_box(
                    Executor::new(ExecutorConfig::default())
                        .run(Hmm::new(*config), trace.iter().cloned())
                        .elapsed,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bypass_threshold,
    bench_tier2_insert_mode,
    bench_transfer_method,
    bench_sampling,
    bench_prefetch,
    bench_markov_scope,
    bench_predictor,
    bench_hmm_generosity
);
criterion_main!(benches);
