//! DMA vs zero-copy transfer engines and the Hybrid-XT selector.

use gmt_sim::trace::{LinkDir, TraceEvent, TraceSink};
use gmt_sim::{Dur, FifoServer, Link, Time};
use serde::{Deserialize, Serialize};

/// How a batch of pages is moved between GPU and host memory (paper §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferMethod {
    /// Always use the `cudaMemcpyAsync` DMA engine.
    DmaAsync,
    /// Always use warp zero-copy loads/stores on pinned memory.
    ZeroCopy,
    /// The paper's Hybrid-XT: zero-copy only when the batch has at least
    /// `min_pages` non-contiguous pages (8 in the paper, the Fig. 6a
    /// crossover) *and* at least `min_threads` warp threads can be
    /// employed; otherwise DMA.
    Hybrid {
        /// Minimum batch size for zero-copy (paper: 8).
        min_pages: usize,
        /// Minimum employable threads for zero-copy (paper: X ∈ {8,16,32}).
        min_threads: u32,
    },
}

impl TransferMethod {
    /// The configuration GMT ships with: Hybrid-32T (paper §2.3).
    pub fn hybrid_32t() -> TransferMethod {
        TransferMethod::Hybrid {
            min_pages: 8,
            min_threads: 32,
        }
    }

    /// Hybrid-XT with the paper's 8-page threshold and `x` threads.
    pub fn hybrid(x: u32) -> TransferMethod {
        TransferMethod::Hybrid {
            min_pages: 8,
            min_threads: x,
        }
    }

    /// Whether this method picks zero-copy for a batch of `pages` pages
    /// with `threads` employable threads.
    pub fn picks_zero_copy(&self, pages: usize, threads: u32) -> bool {
        match *self {
            TransferMethod::DmaAsync => false,
            TransferMethod::ZeroCopy => true,
            TransferMethod::Hybrid {
                min_pages,
                min_threads,
            } => pages >= min_pages && threads >= min_threads,
        }
    }
}

/// One batch of non-contiguous pages to move in one direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferBatch {
    /// Number of non-contiguous pages.
    pub pages: usize,
    /// Bytes per page.
    pub page_bytes: u64,
    /// Warp threads employable for a zero-copy transfer of this batch.
    pub threads: u32,
}

impl TransferBatch {
    /// Total payload bytes.
    pub fn bytes(&self) -> u64 {
        self.pages as u64 * self.page_bytes
    }
}

/// Calibration of the GPU ⇄ host path.
///
/// Defaults model PCIe Gen3 x16 (~12.8 GB/s effective) with a copy-engine
/// call gap and zero-copy parameters chosen so the DMA/zero-copy crossover
/// lands near the paper's 8-page figure and host-memory page retrieval
/// costs ≈50 µs under load (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostLinkConfig {
    /// Link bandwidth, bytes/second (Gen3 x16 effective).
    pub link_bytes_per_sec: f64,
    /// Link propagation latency.
    pub link_latency: Dur,
    /// Per-`cudaMemcpyAsync` engine gap (launch + descriptor fetch).
    pub dma_call_gap: Dur,
    /// Fixed pinning/bookkeeping overhead per zero-copy batch. Pinning
    /// mutates shared mapping state, so batches serialize through it.
    pub pin_overhead: Dur,
    /// Additional pinning work per page in the batch.
    pub pin_per_page: Dur,
    /// Sustainable zero-copy bandwidth per employed GPU thread,
    /// bytes/second.
    pub per_thread_bytes_per_sec: f64,
    /// Software lookup cost of probing Tier-2 residency (paper §3.4:
    /// ~50 ns added to the critical path on a miss).
    pub lookup_cost: Dur,
}

impl Default for HostLinkConfig {
    fn default() -> HostLinkConfig {
        HostLinkConfig {
            link_bytes_per_sec: 12.8e9,
            link_latency: Dur::from_micros(1),
            dma_call_gap: Dur::from_micros(3),
            pin_overhead: Dur::from_micros(24),
            pin_per_page: Dur::from_micros(1),
            per_thread_bytes_per_sec: 1.0e9,
            lookup_cost: Dur::from_nanos(50),
        }
    }
}

impl HostLinkConfig {
    /// Rejects degenerate link calibrations before they can turn into
    /// zero/NaN transfer durations deep inside the batch scheduler.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first nonsensical knob.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !(self.link_bytes_per_sec.is_finite() && self.link_bytes_per_sec > 0.0) {
            return Err("link_bytes_per_sec must be finite and positive");
        }
        if !(self.per_thread_bytes_per_sec.is_finite() && self.per_thread_bytes_per_sec > 0.0) {
            return Err("per_thread_bytes_per_sec must be finite and positive");
        }
        Ok(())
    }
}

/// Transfer counters for one direction of the GPU ⇄ host path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferStats {
    /// Batches moved by the DMA engine.
    pub dma_batches: u64,
    /// Batches moved by zero-copy.
    pub zero_copy_batches: u64,
    /// Pages moved (both engines).
    pub pages: u64,
    /// Bytes moved (both engines).
    pub bytes: u64,
}

/// One direction of the GPU ⇄ host PCIe path: a shared link, a DMA engine,
/// and the zero-copy cost model.
///
/// The real link is full-duplex, so the GMT runtime instantiates two
/// `HostLink`s (device-to-host for evictions, host-to-device for fetches).
///
/// # Examples
///
/// ```
/// use gmt_sim::Time;
/// use gmt_pcie::{HostLink, HostLinkConfig, TransferBatch, TransferMethod};
///
/// let mut link = HostLink::new(HostLinkConfig::default());
/// let batch = TransferBatch { pages: 16, page_bytes: 64 * 1024, threads: 32 };
/// let done = link.transfer(Time::ZERO, batch, TransferMethod::hybrid_32t());
/// assert!(done > Time::ZERO);
/// assert_eq!(link.stats().zero_copy_batches, 1);
/// ```
#[derive(Debug, Clone)]
pub struct HostLink {
    config: HostLinkConfig,
    link: Link,
    dma_engine: FifoServer,
    pin_server: FifoServer,
    stats: TransferStats,
    trace: TraceSink,
    trace_dir: LinkDir,
}

impl HostLink {
    /// Creates a link from `config`.
    ///
    /// # Panics
    ///
    /// Panics if a bandwidth in `config` is non-positive.
    pub fn new(config: HostLinkConfig) -> HostLink {
        HostLink {
            link: Link::new(config.link_bytes_per_sec, config.link_latency),
            dma_engine: FifoServer::new(),
            pin_server: FifoServer::new(),
            stats: TransferStats::default(),
            trace: TraceSink::disabled(),
            trace_dir: LinkDir::ToGpu,
            config,
        }
    }

    /// The link's configuration.
    pub fn config(&self) -> &HostLinkConfig {
        &self.config
    }

    /// Routes this link's batch transfers into `trace`, labelled with the
    /// direction this instance serves.
    pub fn attach_trace(&mut self, trace: &TraceSink, direction: LinkDir) {
        self.trace = trace.clone();
        self.trace_dir = direction;
    }

    /// Moves `batch` at time `now` using `method`; returns the completion
    /// time.
    pub fn transfer(&mut self, now: Time, batch: TransferBatch, method: TransferMethod) -> Time {
        if batch.pages == 0 {
            return now;
        }
        self.stats.pages += batch.pages as u64;
        self.stats.bytes += batch.bytes();
        let zero_copy = method.picks_zero_copy(batch.pages, batch.threads);
        let done = if zero_copy {
            self.stats.zero_copy_batches += 1;
            self.zero_copy(now, batch)
        } else {
            self.stats.dma_batches += 1;
            self.dma(now, batch)
        };
        self.trace.emit(
            now,
            TraceEvent::PcieBatch {
                direction: self.trace_dir,
                pages: batch.pages as u32,
                bytes: batch.bytes(),
                zero_copy,
                latency_ns: done.since(now).as_nanos(),
            },
        );
        done
    }

    /// Transfer counters so far.
    pub fn stats(&self) -> TransferStats {
        self.stats
    }

    /// Total bytes moved over the underlying link.
    pub fn bytes_moved(&self) -> u64 {
        self.link.bytes_moved()
    }

    /// Total time the underlying link has been occupied.
    pub fn busy_time(&self) -> Dur {
        self.link.busy_time()
    }

    /// The software cost of one Tier-2 residency probe (paper §3.4).
    pub fn lookup_cost(&self) -> Dur {
        self.config.lookup_cost
    }

    /// `cudaMemcpyAsync` path: each non-contiguous page is one serialized
    /// engine descriptor — the engine processes (setup gap + wire time)
    /// per page back-to-back, which is exactly the serialization
    /// bottleneck the paper describes. The payload also occupies the
    /// shared wire, so concurrent zero-copy traffic and DMA traffic
    /// together can never exceed the link's bandwidth.
    fn dma(&mut self, now: Time, batch: TransferBatch) -> Time {
        let wire = Dur::for_bytes(batch.page_bytes, self.config.link_bytes_per_sec);
        let per_page = self.config.dma_call_gap + wire;
        let mut done = now;
        for _ in 0..batch.pages {
            let engine_done = self.dma_engine.submit(now, per_page);
            let link_done = self.link.transfer(engine_done - wire, batch.page_bytes);
            done = engine_done.max(link_done);
        }
        done
    }

    /// Zero-copy path: the batch's pages are pinned first (serialized —
    /// pinning updates shared mapping state), then the employed threads
    /// stream the pages at `threads x per-thread` bandwidth (capped by
    /// the link).
    fn zero_copy(&mut self, now: Time, batch: TransferBatch) -> Time {
        let pin = self.config.pin_overhead + self.config.pin_per_page * batch.pages as u64;
        let start = self.pin_server.submit(now, pin);
        let rate = (batch.threads.max(1) as f64) * self.config.per_thread_bytes_per_sec;
        self.link.transfer_at_rate(start, batch.bytes(), rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = 64 * 1024;

    fn batch(pages: usize, threads: u32) -> TransferBatch {
        TransferBatch {
            pages,
            page_bytes: PAGE,
            threads,
        }
    }

    fn elapsed_us(done: Time) -> f64 {
        done.since(Time::ZERO).as_nanos() as f64 / 1e3
    }

    #[test]
    fn dma_beats_zero_copy_for_small_batches() {
        let mut dma = HostLink::new(HostLinkConfig::default());
        let mut zc = HostLink::new(HostLinkConfig::default());
        let b = batch(2, 32);
        let dma_done = dma.transfer(Time::ZERO, b, TransferMethod::DmaAsync);
        let zc_done = zc.transfer(Time::ZERO, b, TransferMethod::ZeroCopy);
        assert!(dma_done < zc_done, "DMA {:?} vs ZC {:?}", dma_done, zc_done);
    }

    #[test]
    fn zero_copy_beats_dma_for_large_batches() {
        let mut dma = HostLink::new(HostLinkConfig::default());
        let mut zc = HostLink::new(HostLinkConfig::default());
        let b = batch(32, 32);
        let dma_done = dma.transfer(Time::ZERO, b, TransferMethod::DmaAsync);
        let zc_done = zc.transfer(Time::ZERO, b, TransferMethod::ZeroCopy);
        assert!(zc_done < dma_done, "ZC {:?} vs DMA {:?}", zc_done, dma_done);
    }

    #[test]
    fn crossover_near_eight_pages() {
        // Find the smallest batch where full-warp zero-copy wins; the paper
        // reports 8 — our calibration must land in the same neighbourhood.
        let mut crossover = None;
        for n in 1..=64 {
            let mut dma = HostLink::new(HostLinkConfig::default());
            let mut zc = HostLink::new(HostLinkConfig::default());
            let b = batch(n, 32);
            let d = dma.transfer(Time::ZERO, b, TransferMethod::DmaAsync);
            let z = zc.transfer(Time::ZERO, b, TransferMethod::ZeroCopy);
            if z <= d {
                crossover = Some(n);
                break;
            }
        }
        let n = crossover.expect("zero-copy must eventually win");
        assert!((5..=12).contains(&n), "crossover at {n} pages");
    }

    #[test]
    fn few_threads_cripple_zero_copy() {
        let mut full = HostLink::new(HostLinkConfig::default());
        let mut few = HostLink::new(HostLinkConfig::default());
        let fast = full.transfer(Time::ZERO, batch(32, 32), TransferMethod::ZeroCopy);
        let slow = few.transfer(Time::ZERO, batch(32, 4), TransferMethod::ZeroCopy);
        assert!(elapsed_us(slow) > 2.0 * elapsed_us(fast));
    }

    #[test]
    fn hybrid_32t_picks_the_right_engine() {
        let m = TransferMethod::hybrid_32t();
        assert!(!m.picks_zero_copy(4, 32), "small batch must use DMA");
        assert!(!m.picks_zero_copy(16, 16), "half warp must use DMA");
        assert!(m.picks_zero_copy(16, 32), "big batch + full warp uses ZC");
    }

    #[test]
    fn hybrid_matches_best_pure_method_at_extremes() {
        let hybrid = TransferMethod::hybrid_32t();
        for (pages, threads) in [(1usize, 32u32), (64, 32)] {
            let mut h = HostLink::new(HostLinkConfig::default());
            let mut d = HostLink::new(HostLinkConfig::default());
            let mut z = HostLink::new(HostLinkConfig::default());
            let b = batch(pages, threads);
            let hd = h.transfer(Time::ZERO, b, hybrid);
            let dd = d.transfer(Time::ZERO, b, TransferMethod::DmaAsync);
            let zd = z.transfer(Time::ZERO, b, TransferMethod::ZeroCopy);
            assert_eq!(hd, hd.min(dd).min(zd), "hybrid suboptimal at {pages} pages");
        }
    }

    #[test]
    fn dma_engine_serializes_across_batches() {
        let mut link = HostLink::new(HostLinkConfig::default());
        let first = link.transfer(Time::ZERO, batch(8, 32), TransferMethod::DmaAsync);
        let second = link.transfer(Time::ZERO, batch(8, 32), TransferMethod::DmaAsync);
        assert!(second > first, "second batch must queue behind the first");
    }

    #[test]
    fn empty_batch_is_free() {
        let mut link = HostLink::new(HostLinkConfig::default());
        let done = link.transfer(Time::ZERO, batch(0, 32), TransferMethod::hybrid_32t());
        assert_eq!(done, Time::ZERO);
        assert_eq!(link.stats().pages, 0);
    }

    #[test]
    fn stats_split_by_engine() {
        let mut link = HostLink::new(HostLinkConfig::default());
        link.transfer(Time::ZERO, batch(2, 32), TransferMethod::hybrid_32t());
        link.transfer(Time::ZERO, batch(32, 32), TransferMethod::hybrid_32t());
        let s = link.stats();
        assert_eq!(s.dma_batches, 1);
        assert_eq!(s.zero_copy_batches, 1);
        assert_eq!(s.pages, 34);
        assert_eq!(s.bytes, 34 * PAGE);
    }
}
