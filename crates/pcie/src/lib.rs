//! PCIe Gen3 x16 transfer models for the Tier-1 ⇄ Tier-2 path.
//!
//! Paper §2.3 identifies two mechanisms for moving pages between GPU memory
//! and host memory, with sharply different cost shapes (Fig. 6a):
//!
//! * **`cudaMemcpyAsync`** — a DMA engine moves each non-contiguous page in
//!   a separate, serialized engine operation. Low fixed cost per call, but
//!   one engine: it becomes a serialization bottleneck for large scattered
//!   batches and across concurrent warps.
//! * **Zero-copy** — warp threads issue loads/stores directly against
//!   pinned host memory. Throughput scales with the number of threads that
//!   can be employed, but each batch pays a pinning overhead up front.
//!
//! The crossover sits at ≈8 non-contiguous pages, and the paper's
//! **Hybrid-XT** policy uses zero-copy only when (a) the batch exceeds
//! 8 pages and (b) at least `X` threads can be employed; Hybrid-32T (the
//! full warp) wins across the Zipf skew sweep (Fig. 6b) and is what GMT
//! ships with.
//!
//! [`HostLink`] implements both engines over a shared [`gmt_sim::Link`] and
//! [`TransferMethod`] selects between them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod transfer;

pub use transfer::{HostLink, HostLinkConfig, TransferBatch, TransferMethod, TransferStats};
