//! Property tests for the transfer models.

use gmt_pcie::{HostLink, HostLinkConfig, TransferBatch, TransferMethod};
use gmt_sim::Time;
use proptest::prelude::*;

fn fresh() -> HostLink {
    HostLink::new(HostLinkConfig::default())
}

const METHODS: [TransferMethod; 3] = [
    TransferMethod::DmaAsync,
    TransferMethod::ZeroCopy,
    TransferMethod::Hybrid {
        min_pages: 8,
        min_threads: 32,
    },
];

proptest! {
    #[test]
    fn completion_never_precedes_submission(
        pages in 1usize..64,
        threads in 1u32..33,
        now_ns in 0u64..1_000_000,
        method_idx in 0usize..3,
    ) {
        let mut link = fresh();
        let now = Time::from_nanos(now_ns);
        let batch = TransferBatch { pages, page_bytes: 64 * 1024, threads };
        let done = link.transfer(now, batch, METHODS[method_idx]);
        prop_assert!(done > now, "transfers take time");
    }

    #[test]
    fn more_pages_never_complete_earlier(
        pages in 1usize..63,
        threads in 1u32..33,
        method_idx in 0usize..3,
    ) {
        // Hybrid switches engines as the batch grows, so monotonicity is
        // only guaranteed per pure method; check those.
        let method = METHODS[method_idx];
        if matches!(method, TransferMethod::Hybrid { .. }) {
            return Ok(());
        }
        let mut a = fresh();
        let mut b = fresh();
        let small = TransferBatch { pages, page_bytes: 64 * 1024, threads };
        let big = TransferBatch { pages: pages + 1, page_bytes: 64 * 1024, threads };
        let da = a.transfer(Time::ZERO, small, method);
        let db = b.transfer(Time::ZERO, big, method);
        prop_assert!(db >= da, "adding a page cannot speed a batch up");
    }

    #[test]
    fn more_threads_never_slow_zero_copy(
        pages in 1usize..64,
        threads in 1u32..32,
    ) {
        let mut a = fresh();
        let mut b = fresh();
        let few = TransferBatch { pages, page_bytes: 64 * 1024, threads };
        let more = TransferBatch { pages, page_bytes: 64 * 1024, threads: threads + 1 };
        let da = a.transfer(Time::ZERO, few, TransferMethod::ZeroCopy);
        let db = b.transfer(Time::ZERO, more, TransferMethod::ZeroCopy);
        prop_assert!(db <= da, "extra threads cannot slow zero-copy down");
    }

    #[test]
    fn back_to_back_transfers_are_fifo_ordered(
        sizes in proptest::collection::vec(1usize..32, 2..20),
    ) {
        let mut link = fresh();
        let mut previous = Time::ZERO;
        for pages in sizes {
            let batch = TransferBatch { pages, page_bytes: 64 * 1024, threads: 32 };
            let done = link.transfer(Time::ZERO, batch, TransferMethod::DmaAsync);
            prop_assert!(done >= previous, "engine completions must be ordered");
            previous = done;
        }
    }

    #[test]
    fn stats_account_every_page(
        batches in proptest::collection::vec((1usize..32, 0usize..3), 1..20),
    ) {
        let mut link = fresh();
        let mut expected_pages = 0u64;
        for (pages, method_idx) in batches {
            let batch = TransferBatch { pages, page_bytes: 64 * 1024, threads: 32 };
            link.transfer(Time::ZERO, batch, METHODS[method_idx]);
            expected_pages += pages as u64;
        }
        let stats = link.stats();
        prop_assert_eq!(stats.pages, expected_pages);
        prop_assert_eq!(stats.bytes, expected_pages * 64 * 1024);
        prop_assert!(stats.dma_batches + stats.zero_copy_batches > 0);
    }
}
