//! Memory vocabulary shared by every component of the GMT reproduction.
//!
//! This crate defines the units the paper's algorithms operate on:
//!
//! * [`PageId`] and [`Tier`] — 64 KB pages and the three-tier hierarchy
//!   (GPU memory, host memory, SSD),
//! * [`WarpAccess`] / [`PageSet`] — one coalesced memory instruction from a
//!   GPU warp, touching one or more pages,
//! * [`ClockList`] — the clock (second-chance) replacement list used in
//!   Tier-1 (paper §2, common parameter 3),
//! * [`FifoCache`] — the FIFO-managed Tier-2 structure (paper §2.2),
//! * [`PageTable`] — a dense per-page metadata table,
//! * [`TierGeometry`] — capacities and the over-subscription arithmetic the
//!   evaluation sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod clock;
mod fifo;
mod geometry;
mod page;
mod table;

pub mod trace;

pub use access::{PageSet, WarpAccess};
pub use clock::ClockList;
pub use fifo::FifoCache;
pub use geometry::TierGeometry;
pub use page::{PageId, Tier};
pub use table::PageTable;
