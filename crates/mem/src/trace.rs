//! Compact binary serialization of access traces.
//!
//! Workload traces can run to millions of accesses; re-generating a graph
//! and re-running BFS for every experiment is wasteful when the same trace
//! is replayed across five systems. This module provides a compact binary
//! encoding (~9 bytes per single-page access) for recording a trace once
//! and replaying it many times, or for importing traces captured outside
//! this workspace.
//!
//! # Format
//!
//! ```text
//! magic   b"GMTTRACE"     8 bytes
//! version u16 LE          currently 1
//! count   u64 LE          number of accesses
//! per access:
//!   header u8             bit 7 = write, bits 0..7 = page count (1..=127)
//!   pages  count x u64 LE
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{PageId, WarpAccess};

const MAGIC: &[u8; 8] = b"GMTTRACE";
const VERSION: u16 = 1;

/// Error decoding a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeTraceError {
    /// The buffer does not start with the trace magic.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// The buffer ended before the declared access count was read.
    Truncated,
    /// An access header declared zero pages.
    EmptyAccess,
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeTraceError::BadMagic => f.write_str("not a GMT trace (bad magic)"),
            DecodeTraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v}")
            }
            DecodeTraceError::Truncated => f.write_str("trace ends before declared count"),
            DecodeTraceError::EmptyAccess => f.write_str("access with zero pages"),
        }
    }
}

impl std::error::Error for DecodeTraceError {}

/// Serializes a trace into a freshly allocated buffer.
///
/// # Examples
///
/// ```
/// use gmt_mem::{trace, PageId, WarpAccess};
/// let t = vec![WarpAccess::read(PageId(1)), WarpAccess::write(PageId(2))];
/// let bytes = trace::encode(&t);
/// assert_eq!(trace::decode(&bytes)?, t);
/// # Ok::<(), gmt_mem::trace::DecodeTraceError>(())
/// ```
///
/// # Panics
///
/// Panics if an access touches more than 127 distinct pages (a warp can
/// touch at most 32).
pub fn encode(accesses: &[WarpAccess]) -> Bytes {
    let mut buf = BytesMut::with_capacity(18 + accesses.len() * 9);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(accesses.len() as u64);
    for access in accesses {
        let n = access.pages.len();
        assert!(n > 0 && n <= 127, "access page count {n} out of range");
        let header = (n as u8) | if access.write { 0x80 } else { 0 };
        buf.put_u8(header);
        for page in access.pages.iter() {
            buf.put_u64_le(page.0);
        }
    }
    buf.freeze()
}

/// Deserializes a trace produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeTraceError`] if the buffer is not a well-formed
/// version-1 trace.
pub fn decode(mut buf: &[u8]) -> Result<Vec<WarpAccess>, DecodeTraceError> {
    if buf.remaining() < 18 {
        return Err(DecodeTraceError::BadMagic);
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeTraceError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(DecodeTraceError::UnsupportedVersion(version));
    }
    let count = buf.get_u64_le() as usize;
    let mut out = Vec::with_capacity(count.min(1 << 24));
    for _ in 0..count {
        if buf.remaining() < 1 {
            return Err(DecodeTraceError::Truncated);
        }
        let header = buf.get_u8();
        let write = header & 0x80 != 0;
        let n = (header & 0x7F) as usize;
        if n == 0 {
            return Err(DecodeTraceError::EmptyAccess);
        }
        if buf.remaining() < n * 8 {
            return Err(DecodeTraceError::Truncated);
        }
        let mut pages = Vec::with_capacity(n);
        for _ in 0..n {
            pages.push(PageId(buf.get_u64_le()));
        }
        out.push(WarpAccess::scattered(pages, write));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<WarpAccess> {
        vec![
            WarpAccess::read(PageId(0)),
            WarpAccess::write(PageId(u64::MAX)),
            WarpAccess::scattered(vec![PageId(5), PageId(9), PageId(1)], false),
            WarpAccess::scattered((0..32).map(PageId).collect(), true),
        ]
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        assert_eq!(decode(&encode(&t)).unwrap(), t);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t: Vec<WarpAccess> = Vec::new();
        assert_eq!(decode(&encode(&t)).unwrap(), t);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = encode(&sample()).to_vec();
        b[0] = b'X';
        assert_eq!(decode(&b), Err(DecodeTraceError::BadMagic));
        assert_eq!(decode(&[]), Err(DecodeTraceError::BadMagic));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut b = encode(&sample()).to_vec();
        b[8] = 9;
        assert_eq!(decode(&b), Err(DecodeTraceError::UnsupportedVersion(9)));
    }

    #[test]
    fn truncation_detected() {
        let b = encode(&sample());
        for cut in [19, b.len() - 1] {
            assert_eq!(
                decode(&b[..cut]),
                Err(DecodeTraceError::Truncated),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn zero_page_access_rejected() {
        let mut b = encode(&[WarpAccess::read(PageId(1))]).to_vec();
        b[18] &= 0x80; // clear the page count
        assert_eq!(decode(&b), Err(DecodeTraceError::EmptyAccess));
    }

    #[test]
    fn size_is_compact() {
        let t = vec![WarpAccess::read(PageId(1)); 1000];
        assert_eq!(encode(&t).len(), 18 + 1000 * 9);
    }
}
