//! Pages and tiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of one page in the application's address space.
///
/// GMT manages data at 64 KB page granularity (the UVM default the paper
/// adopts, §2 common parameter 1). Page ids are dense: workloads number
/// their pages `0..total_pages`, which lets every per-page table be a flat
/// vector.
///
/// # Examples
///
/// ```
/// use gmt_mem::PageId;
/// let p = PageId(42);
/// assert_eq!(p.index(), 42);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageId(pub u64);

impl PageId {
    /// The page id as a `usize` index into dense per-page tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u64> for PageId {
    fn from(v: u64) -> PageId {
        PageId(v)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// One level of the three-tier hierarchy.
///
/// The discriminant ordering (GPU < Host < Ssd) matches "distance from the
/// GPU cores" and is what the reuse classifier (paper Eq. 1) maps RRDs onto:
/// short-reuse → [`Tier::Gpu`], medium-reuse → [`Tier::Host`], long-reuse →
/// [`Tier::Ssd`].
///
/// # Examples
///
/// ```
/// use gmt_mem::Tier;
/// assert!(Tier::Gpu < Tier::Ssd);
/// assert_eq!(Tier::Host.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Tier-1: GPU device memory (HBM).
    Gpu,
    /// Tier-2: host DRAM, reached over PCIe.
    Host,
    /// Tier-3: the NVMe SSD.
    Ssd,
}

impl Tier {
    /// All tiers, nearest first.
    pub const ALL: [Tier; 3] = [Tier::Gpu, Tier::Host, Tier::Ssd];

    /// Dense index (0, 1, 2) for small per-tier arrays.
    pub fn index(self) -> usize {
        match self {
            Tier::Gpu => 0,
            Tier::Host => 1,
            Tier::Ssd => 2,
        }
    }

    /// The inverse of [`Tier::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    pub fn from_index(i: usize) -> Tier {
        Tier::ALL[i]
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Tier::Gpu => "Tier-1(GPU)",
            Tier::Host => "Tier-2(Host)",
            Tier::Ssd => "Tier-3(SSD)",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_index_roundtrip() {
        for t in Tier::ALL {
            assert_eq!(Tier::from_index(t.index()), t);
        }
    }

    #[test]
    fn tier_ordering_is_distance_from_gpu() {
        assert!(Tier::Gpu < Tier::Host);
        assert!(Tier::Host < Tier::Ssd);
    }

    #[test]
    fn page_display() {
        assert_eq!(PageId(7).to_string(), "P7");
        assert_eq!(Tier::Gpu.to_string(), "Tier-1(GPU)");
    }

    #[test]
    fn page_from_u64() {
        let p: PageId = 9u64.into();
        assert_eq!(p, PageId(9));
    }
}
