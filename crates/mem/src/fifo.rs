//! FIFO-managed Tier-2 residency.
//!
//! Paper §2.2: Tier-2 pages are evicted "using a simple FIFO mechanism"
//! when an insertion finds no empty slot — except under GMT-Reuse, whose
//! rationale (§2.1.3: every Tier-2 page is in the same reuse equivalence
//! class) instead *rejects* the insertion when the tier is full. Both modes
//! are provided: [`FifoCache::insert_evicting`] and
//! [`FifoCache::insert_if_room`].

use std::collections::VecDeque;

use crate::PageId;

/// A fixed-capacity FIFO set of resident pages.
///
/// Removal (promotion of a page back to Tier-1) is O(1) amortized via lazy
/// deletion: stale queue entries are skipped at eviction time.
///
/// # Examples
///
/// ```
/// use gmt_mem::{FifoCache, PageId};
/// let mut t2 = FifoCache::new(2);
/// assert_eq!(t2.insert_evicting(PageId(0)), None);
/// assert_eq!(t2.insert_evicting(PageId(1)), None);
/// assert_eq!(t2.insert_evicting(PageId(2)), Some(PageId(0)));
/// assert!(t2.contains(PageId(1)) && t2.contains(PageId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct FifoCache {
    queue: VecDeque<PageId>,
    /// Dense residency bitmap keyed by page id (ids are dense from zero
    /// in every workload); grows on demand. A single indexed load on the
    /// contains/insert/remove hot path instead of a hash probe.
    resident: Vec<bool>,
    len: usize,
    capacity: usize,
}

impl FifoCache {
    /// Creates an empty cache with room for `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> FifoCache {
        assert!(capacity > 0, "fifo capacity must be positive");
        FifoCache {
            queue: VecDeque::with_capacity(capacity + 1),
            resident: Vec::new(),
            len: 0,
            capacity,
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident pages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the cache is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Whether `page` is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.resident.get(page.0 as usize).copied().unwrap_or(false)
    }

    fn mark(&mut self, page: PageId) {
        let i = page.0 as usize;
        if i >= self.resident.len() {
            self.resident.resize(i + 1, false);
        }
        self.resident[i] = true;
        self.len += 1;
    }

    /// Clears `page`'s residency bit; returns whether it was set.
    fn unmark(&mut self, page: PageId) -> bool {
        match self.resident.get_mut(page.0 as usize) {
            Some(r) if *r => {
                *r = false;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Inserts `page`, evicting the oldest resident page if full.
    ///
    /// Returns the evicted page, if any.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already resident.
    pub fn insert_evicting(&mut self, page: PageId) -> Option<PageId> {
        assert!(
            !self.contains(page),
            "page {page} already resident in tier-2"
        );
        let victim = if self.is_full() {
            Some(self.pop_oldest())
        } else {
            None
        };
        self.mark(page);
        self.queue.push_back(page);
        victim
    }

    /// Inserts `page` only if a slot is free; returns whether it was
    /// inserted.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already resident.
    pub fn insert_if_room(&mut self, page: PageId) -> bool {
        assert!(
            !self.contains(page),
            "page {page} already resident in tier-2"
        );
        if self.is_full() {
            return false;
        }
        self.mark(page);
        self.queue.push_back(page);
        true
    }

    /// Removes `page` (promotion to Tier-1); returns whether it was
    /// resident.
    pub fn remove(&mut self, page: PageId) -> bool {
        let was_resident = self.unmark(page);
        if was_resident {
            self.compact_if_bloated();
        }
        was_resident
    }

    /// Iterates over resident pages in ascending page-id order.
    pub fn iter(&self) -> impl Iterator<Item = PageId> + '_ {
        self.resident
            .iter()
            .enumerate()
            .filter(|(_, &r)| r)
            .map(|(i, _)| PageId(i as u64))
    }

    fn pop_oldest(&mut self) -> PageId {
        loop {
            let head = self
                .queue
                .pop_front()
                .expect("full cache has queue entries");
            if self.unmark(head) {
                return head;
            }
            // Stale entry for a page that was promoted; skip it.
        }
    }

    fn compact_if_bloated(&mut self) {
        // Keep the queue's stale fraction bounded so memory stays O(capacity).
        if self.queue.len() > 2 * self.capacity + 16 {
            let resident = &self.resident;
            self.queue
                .retain(|p| resident.get(p.0 as usize).copied().unwrap_or(false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_is_fifo() {
        let mut c = FifoCache::new(3);
        for i in 0..3 {
            assert_eq!(c.insert_evicting(PageId(i)), None);
        }
        assert_eq!(c.insert_evicting(PageId(3)), Some(PageId(0)));
        assert_eq!(c.insert_evicting(PageId(4)), Some(PageId(1)));
    }

    #[test]
    fn removed_pages_are_skipped_at_eviction() {
        let mut c = FifoCache::new(3);
        for i in 0..3 {
            c.insert_evicting(PageId(i));
        }
        assert!(c.remove(PageId(0)));
        // 0 was promoted; next eviction must pick 1, not the stale 0.
        c.insert_evicting(PageId(3));
        assert_eq!(c.insert_evicting(PageId(4)), Some(PageId(1)));
    }

    #[test]
    fn insert_if_room_respects_capacity() {
        let mut c = FifoCache::new(1);
        assert!(c.insert_if_room(PageId(0)));
        assert!(!c.insert_if_room(PageId(1)));
        assert!(c.contains(PageId(0)));
        assert!(!c.contains(PageId(1)));
        c.remove(PageId(0));
        assert!(c.insert_if_room(PageId(1)));
    }

    #[test]
    fn len_tracks_residency_not_queue() {
        let mut c = FifoCache::new(4);
        for i in 0..4 {
            c.insert_evicting(PageId(i));
        }
        c.remove(PageId(2));
        assert_eq!(c.len(), 3);
        assert!(!c.is_full());
    }

    #[test]
    fn queue_stays_bounded_under_churn() {
        let mut c = FifoCache::new(8);
        for round in 0..1_000u64 {
            let p = PageId(round);
            if !c.is_full() {
                c.insert_if_room(p);
            } else {
                c.insert_evicting(p);
            }
            // Promote a page every round to generate stale entries.
            let some = c.iter().next().expect("cache non-empty");
            c.remove(some);
        }
        assert!(c.queue.len() <= 2 * c.capacity() + 16);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn duplicate_insert_panics() {
        let mut c = FifoCache::new(2);
        c.insert_evicting(PageId(1));
        c.insert_evicting(PageId(1));
    }
}
