//! Coalesced warp accesses.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::PageId;

/// The set of distinct pages touched by one coalesced warp instruction.
///
/// On NVIDIA GPUs a warp's 32 lanes issue one coalesced memory transaction;
/// after coalescing, a unit-stride access touches a single page while a
/// scattered (graph/pointer) access can touch up to 32. `PageSet` stores the
/// single-page case inline so million-entry traces stay compact.
///
/// # Examples
///
/// ```
/// use gmt_mem::{PageId, PageSet};
/// let one = PageSet::from(PageId(3));
/// assert_eq!(one.len(), 1);
/// let many = PageSet::from(vec![PageId(1), PageId(2)]);
/// assert_eq!(many.iter().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageSet {
    /// A fully-coalesced access touching a single page (the common case).
    One(PageId),
    /// A divergent access touching several distinct pages.
    Many(Box<[PageId]>),
}

impl PageSet {
    /// Number of distinct pages touched.
    pub fn len(&self) -> usize {
        match self {
            PageSet::One(_) => 1,
            PageSet::Many(pages) => pages.len(),
        }
    }

    /// Whether the set is empty (only possible for an empty `Many`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the touched pages.
    pub fn iter(&self) -> impl Iterator<Item = PageId> + '_ {
        match self {
            PageSet::One(p) => std::slice::from_ref(p).iter().copied(),
            PageSet::Many(pages) => pages.iter().copied(),
        }
    }

    /// The first page in the set.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn first(&self) -> PageId {
        self.iter().next().expect("page set is empty")
    }

    /// Shifts every page id by `offset` in place (no reallocation).
    ///
    /// Multi-tenant runtimes use this to relocate a tenant's trace into
    /// its global page range without rebuilding every access.
    pub fn relocate(&mut self, offset: u64) {
        match self {
            PageSet::One(p) => p.0 += offset,
            PageSet::Many(pages) => {
                for p in pages.iter_mut() {
                    p.0 += offset;
                }
            }
        }
    }
}

impl From<PageId> for PageSet {
    fn from(p: PageId) -> PageSet {
        PageSet::One(p)
    }
}

impl From<Vec<PageId>> for PageSet {
    fn from(mut pages: Vec<PageId>) -> PageSet {
        if pages.len() == 1 {
            PageSet::One(pages.pop().expect("len checked"))
        } else {
            PageSet::Many(pages.into_boxed_slice())
        }
    }
}

/// One coalesced memory instruction issued by a GPU warp.
///
/// This is the unit the whole pipeline operates on: workload generators
/// produce streams of `WarpAccess`es, the executor replays them through a
/// memory backend, and GMT's virtual timestamp counter increments once per
/// `WarpAccess` (paper §2.1.3: "a counter that is updated on each coalesced
/// access").
///
/// # Examples
///
/// ```
/// use gmt_mem::{PageId, WarpAccess};
/// let a = WarpAccess::read(PageId(5));
/// assert!(!a.write);
/// let w = WarpAccess::write(PageId(5));
/// assert!(w.write);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpAccess {
    /// Distinct pages touched by the coalesced instruction.
    pub pages: PageSet,
    /// Whether the instruction stores (dirties the pages).
    pub write: bool,
}

impl WarpAccess {
    /// A coalesced read of a single page.
    pub fn read(page: PageId) -> WarpAccess {
        WarpAccess {
            pages: PageSet::One(page),
            write: false,
        }
    }

    /// A coalesced write of a single page.
    pub fn write(page: PageId) -> WarpAccess {
        WarpAccess {
            pages: PageSet::One(page),
            write: true,
        }
    }

    /// A divergent access touching several pages.
    pub fn scattered(pages: Vec<PageId>, write: bool) -> WarpAccess {
        WarpAccess {
            pages: PageSet::from(pages),
            write,
        }
    }

    /// Shifts every touched page by `offset` in place.
    pub fn relocate(&mut self, offset: u64) {
        self.pages.relocate(offset);
    }
}

impl fmt::Display for WarpAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.write { "W" } else { "R" };
        write!(f, "{kind}[")?;
        for (i, p) in self.pages.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_page_is_inline() {
        let set = PageSet::from(vec![PageId(9)]);
        assert!(matches!(set, PageSet::One(PageId(9))));
    }

    #[test]
    fn many_preserves_order() {
        let set = PageSet::from(vec![PageId(3), PageId(1), PageId(2)]);
        let v: Vec<_> = set.iter().collect();
        assert_eq!(v, vec![PageId(3), PageId(1), PageId(2)]);
        assert_eq!(set.first(), PageId(3));
    }

    #[test]
    fn access_constructors() {
        let r = WarpAccess::read(PageId(1));
        let w = WarpAccess::write(PageId(1));
        let s = WarpAccess::scattered(vec![PageId(1), PageId(2)], true);
        assert!(!r.write && w.write && s.write);
        assert_eq!(s.pages.len(), 2);
    }

    #[test]
    fn relocate_shifts_every_variant() {
        let mut one = WarpAccess::read(PageId(3));
        one.relocate(100);
        assert_eq!(one.pages.first(), PageId(103));
        let mut many = WarpAccess::scattered(vec![PageId(1), PageId(2)], true);
        many.relocate(10);
        let v: Vec<_> = many.pages.iter().collect();
        assert_eq!(v, vec![PageId(11), PageId(12)]);
    }

    #[test]
    fn display_formats_compactly() {
        let s = WarpAccess::scattered(vec![PageId(1), PageId(2)], false);
        assert_eq!(s.to_string(), "R[P1,P2]");
    }

    #[test]
    fn small_footprint() {
        // The One variant must stay pointer-sized-ish so big traces fit in RAM.
        assert!(std::mem::size_of::<PageSet>() <= 24);
        assert!(std::mem::size_of::<WarpAccess>() <= 32);
    }
}
