//! Dense per-page metadata storage.

use crate::PageId;

/// A dense table mapping every page of the address space to metadata `M`.
///
/// Page ids are dense (see [`PageId`]), so the table is a flat vector —
/// the same layout the real GMT uses for its GPU-resident page state, where
/// hash tables would be prohibitively divergent.
///
/// # Examples
///
/// ```
/// use gmt_mem::{PageId, PageTable};
///
/// #[derive(Default, Clone)]
/// struct Meta { dirty: bool }
///
/// let mut table: PageTable<Meta> = PageTable::new(16);
/// table.get_mut(PageId(3)).dirty = true;
/// assert!(table.get(PageId(3)).dirty);
/// assert!(!table.get(PageId(4)).dirty);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable<M> {
    entries: Vec<M>,
}

impl<M: Default + Clone> PageTable<M> {
    /// Creates a table for `total_pages` pages, all with default metadata.
    pub fn new(total_pages: usize) -> PageTable<M> {
        PageTable {
            entries: vec![M::default(); total_pages],
        }
    }
}

impl<M> PageTable<M> {
    /// Number of pages covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table covers zero pages.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Metadata for `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the address space.
    pub fn get(&self, page: PageId) -> &M {
        &self.entries[page.index()]
    }

    /// Mutable metadata for `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the address space.
    pub fn get_mut(&mut self, page: PageId) -> &mut M {
        &mut self.entries[page.index()]
    }

    /// Iterates over `(page, metadata)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &M)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, m)| (PageId(i as u64), m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_then_mutation() {
        let mut t: PageTable<u32> = PageTable::new(4);
        assert_eq!(*t.get(PageId(0)), 0);
        *t.get_mut(PageId(2)) = 7;
        assert_eq!(*t.get(PageId(2)), 7);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn iter_yields_dense_ids() {
        let t: PageTable<u8> = PageTable::new(3);
        let ids: Vec<_> = t.iter().map(|(p, _)| p.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let t: PageTable<u8> = PageTable::new(2);
        let _ = t.get(PageId(2));
    }
}
