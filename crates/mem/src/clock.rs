//! Clock (second-chance) replacement, as used in Tier-1.
//!
//! The paper (§2, common parameter 3) uses "the traditional clock-based
//! replacement algorithm, that offers an effective trade-off between
//! approximating LRU and implementation efficiency" — the same choice BaM
//! makes. GMT-Reuse additionally needs to *inspect* the clock's candidate
//! and possibly give it another chance (short-reuse pages stay in Tier-1,
//! §2.1.3), so [`ClockList`] exposes the candidate explicitly instead of
//! only offering an atomic evict.

use crate::PageId;

/// Sentinel in the dense handle table marking a non-resident page.
const ABSENT: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot {
    page: PageId,
    referenced: bool,
}

/// A fixed-capacity clock replacement list over resident pages.
///
/// # Examples
///
/// ```
/// use gmt_mem::{ClockList, PageId};
///
/// let mut clock = ClockList::new(2);
/// clock.insert(PageId(0));
/// clock.insert(PageId(1));
/// assert_eq!(clock.candidate(), Some(PageId(0))); // sweep clears ref bits
/// clock.touch(PageId(0)); // 0 gets a second chance
/// let victim = clock.replace_candidate(PageId(2));
/// assert_eq!(victim, PageId(1));
/// assert!(clock.contains(PageId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct ClockList {
    slots: Vec<Option<Slot>>,
    /// Dense page-handle table: `index[page] == ABSENT` means not
    /// resident, anything else is the slot holding the page. Page ids
    /// are dense from zero in every workload, so the table grows on
    /// demand and lookups are a single indexed load — no hashing on the
    /// touch/insert/evict hot path.
    index: Vec<u32>,
    free: Vec<usize>,
    hand: usize,
    capacity: usize,
    len: usize,
}

impl ClockList {
    /// Creates an empty clock with room for `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ClockList {
        assert!(capacity > 0, "clock capacity must be positive");
        ClockList {
            slots: Vec::with_capacity(capacity),
            index: Vec::new(),
            free: Vec::new(),
            hand: 0,
            capacity,
            len: 0,
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident pages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the list is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Whether `page` is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.slot_of(page).is_some()
    }

    fn slot_of(&self, page: PageId) -> Option<usize> {
        match self.index.get(page.0 as usize) {
            Some(&s) if s != ABSENT => Some(s as usize),
            _ => None,
        }
    }

    fn set_slot(&mut self, page: PageId, slot: u32) {
        let i = page.0 as usize;
        if i >= self.index.len() {
            self.index.resize(i + 1, ABSENT);
        }
        self.index[i] = slot;
    }

    /// Sets the reference bit of `page` (call on every Tier-1 hit).
    ///
    /// Returns `false` if the page is not resident.
    pub fn touch(&mut self, page: PageId) -> bool {
        match self.slot_of(page) {
            Some(i) => {
                self.slots[i]
                    .as_mut()
                    .expect("indexed slot is occupied")
                    .referenced = true;
                true
            }
            None => false,
        }
    }

    /// Inserts `page` into a free slot with its reference bit set.
    ///
    /// # Panics
    ///
    /// Panics if the list is full or the page is already resident.
    pub fn insert(&mut self, page: PageId) {
        assert!(!self.is_full(), "clock is full; use replace_candidate");
        assert!(!self.contains(page), "page {page} already resident");
        let slot = Slot {
            page,
            referenced: true,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.set_slot(page, i as u32);
        self.len += 1;
    }

    /// Sweeps the hand to the next page with a clear reference bit and
    /// returns it, clearing reference bits it passes over.
    ///
    /// The hand *stays* on the candidate: repeated calls return the same
    /// page until [`ClockList::skip_candidate`], [`ClockList::replace_candidate`]
    /// or [`ClockList::evict_candidate`] moves on. Returns `None` when empty.
    pub fn candidate(&mut self) -> Option<PageId> {
        if self.is_empty() {
            return None;
        }
        loop {
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
            match &mut self.slots[self.hand] {
                None => self.hand += 1,
                Some(slot) if slot.referenced => {
                    slot.referenced = false;
                    self.hand += 1;
                }
                Some(slot) => return Some(slot.page),
            }
        }
    }

    /// Gives the current candidate a second chance (sets its reference bit)
    /// and advances the hand.
    ///
    /// GMT-Reuse calls this when the candidate is classified *short-reuse*
    /// and should stay in Tier-1 (§2.1.3).
    ///
    /// # Panics
    ///
    /// Panics if the list is empty.
    pub fn skip_candidate(&mut self) {
        let page = self.candidate().expect("skip_candidate on empty clock");
        let i = self.slot_of(page).expect("candidate is indexed");
        self.slots[i]
            .as_mut()
            .expect("indexed slot is occupied")
            .referenced = true;
        self.hand = i + 1;
    }

    /// Evicts the current candidate and installs `new` in its slot (with
    /// the reference bit set), returning the victim.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or `new` is already resident.
    pub fn replace_candidate(&mut self, new: PageId) -> PageId {
        assert!(!self.contains(new), "page {new} already resident");
        let victim = self.candidate().expect("replace_candidate on empty clock");
        let i = self.slot_of(victim).expect("candidate is indexed");
        self.index[victim.0 as usize] = ABSENT;
        self.slots[i] = Some(Slot {
            page: new,
            referenced: true,
        });
        self.set_slot(new, i as u32);
        self.hand = i + 1;
        victim
    }

    /// Evicts the current candidate without replacement, returning it.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty.
    pub fn evict_candidate(&mut self) -> PageId {
        let victim = self.candidate().expect("evict_candidate on empty clock");
        let i = self.slot_of(victim).expect("candidate is indexed");
        self.index[victim.0 as usize] = ABSENT;
        self.slots[i] = None;
        self.free.push(i);
        self.len -= 1;
        self.hand = i + 1;
        victim
    }

    /// Removes `page` regardless of hand position; returns whether it was
    /// resident.
    pub fn remove(&mut self, page: PageId) -> bool {
        match self.slot_of(page) {
            Some(i) => {
                self.index[page.0 as usize] = ABSENT;
                self.slots[i] = None;
                self.free.push(i);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Iterates over resident pages in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = PageId> + '_ {
        self.slots.iter().filter_map(|s| s.as_ref().map(|s| s.page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_when_nothing_touched() {
        let mut c = ClockList::new(3);
        for i in 0..3 {
            c.insert(PageId(i));
        }
        // All ref bits set at insert; first sweep clears them in order and
        // the second pass evicts in insertion order.
        assert_eq!(c.replace_candidate(PageId(10)), PageId(0));
        assert_eq!(c.replace_candidate(PageId(11)), PageId(1));
        assert_eq!(c.replace_candidate(PageId(12)), PageId(2));
    }

    #[test]
    fn touch_grants_second_chance() {
        let mut c = ClockList::new(3);
        for i in 0..3 {
            c.insert(PageId(i));
        }
        assert_eq!(c.candidate(), Some(PageId(0)));
        c.touch(PageId(0));
        // Candidate was already swept past its ref bit; touching re-arms it.
        assert_eq!(c.replace_candidate(PageId(9)), PageId(1));
    }

    #[test]
    fn skip_candidate_moves_on() {
        let mut c = ClockList::new(3);
        for i in 0..3 {
            c.insert(PageId(i));
        }
        assert_eq!(c.candidate(), Some(PageId(0)));
        c.skip_candidate();
        assert_eq!(c.candidate(), Some(PageId(1)));
        c.skip_candidate();
        assert_eq!(c.candidate(), Some(PageId(2)));
        c.skip_candidate();
        // Full revolution: the skipped pages' ref bits get cleared again.
        assert_eq!(c.candidate(), Some(PageId(0)));
    }

    #[test]
    fn candidate_is_stable_until_acted_on() {
        let mut c = ClockList::new(2);
        c.insert(PageId(0));
        c.insert(PageId(1));
        assert_eq!(c.candidate(), c.candidate());
    }

    #[test]
    fn evict_then_insert_reuses_slot() {
        let mut c = ClockList::new(2);
        c.insert(PageId(0));
        c.insert(PageId(1));
        let v = c.evict_candidate();
        assert_eq!(v, PageId(0));
        assert_eq!(c.len(), 1);
        assert!(!c.is_full());
        c.insert(PageId(2));
        assert!(c.is_full());
        assert!(c.contains(PageId(2)));
    }

    #[test]
    fn remove_arbitrary_page() {
        let mut c = ClockList::new(3);
        for i in 0..3 {
            c.insert(PageId(i));
        }
        assert!(c.remove(PageId(1)));
        assert!(!c.remove(PageId(1)));
        assert_eq!(c.len(), 2);
        let resident: Vec<_> = c.iter().collect();
        assert!(resident.contains(&PageId(0)) && resident.contains(&PageId(2)));
        // Clock still functions after a hole appears.
        assert_eq!(c.replace_candidate(PageId(7)), PageId(0));
    }

    #[test]
    fn empty_clock_has_no_candidate() {
        let mut c = ClockList::new(2);
        assert_eq!(c.candidate(), None);
        c.insert(PageId(5));
        c.remove(PageId(5));
        assert_eq!(c.candidate(), None);
    }

    #[test]
    #[should_panic(expected = "clock is full")]
    fn insert_into_full_clock_panics() {
        let mut c = ClockList::new(1);
        c.insert(PageId(0));
        c.insert(PageId(1));
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn duplicate_insert_panics() {
        let mut c = ClockList::new(2);
        c.insert(PageId(0));
        c.insert(PageId(0));
    }
}
