//! Tier capacities and over-subscription arithmetic.

use serde::{Deserialize, Serialize};

/// Capacities of the three tiers, in pages.
///
/// The paper's evaluation is parameterized entirely by ratios: the
/// Tier-2:Tier-1 capacity ratio (default 4, §3.1) and the
/// *over-subscription factor* — the application working set divided by
/// Tier-1 + Tier-2 capacity (default 2, footnote 2). `TierGeometry`
/// preserves those ratios while letting experiments scale absolute sizes
/// down from the paper's 16 GB/64 GB.
///
/// # Examples
///
/// ```
/// use gmt_mem::TierGeometry;
///
/// let g = TierGeometry::paper_default(6); // capacities >> 6
/// assert_eq!(g.tier2_pages, 4 * g.tier1_pages);
/// assert!((g.oversubscription() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierGeometry {
    /// Bytes per page (64 KB in the paper, §2 common parameter 1).
    pub page_bytes: u64,
    /// Tier-1 (GPU memory) capacity in pages.
    pub tier1_pages: usize,
    /// Tier-2 (host memory) capacity in pages.
    pub tier2_pages: usize,
    /// Application working-set size in pages (the address-space extent).
    pub total_pages: usize,
}

/// 64 KB, the UVM page size the paper adopts.
pub const PAGE_BYTES: u64 = 64 * 1024;

/// Pages in 16 GB of Tier-1 at 64 KB granularity (the paper's default cap).
const PAPER_TIER1_PAGES: usize = (16u64 << 30) as usize / PAGE_BYTES as usize;

impl TierGeometry {
    /// The paper's default configuration (Tier-1 = 16 GB, Tier-2 = 64 GB,
    /// over-subscription 2), with all capacities divided by
    /// `2^scale_shift`.
    ///
    /// `scale_shift = 0` reproduces the paper's absolute page counts
    /// (262 144 Tier-1 pages); the benchmarks default to `6`
    /// (4 096 Tier-1 pages) to keep runs minutes-scale.
    ///
    /// # Panics
    ///
    /// Panics if the shift would reduce Tier-1 below one page.
    pub fn paper_default(scale_shift: u32) -> TierGeometry {
        TierGeometry::scaled(scale_shift, 4.0, 2.0)
    }

    /// A scaled geometry with explicit Tier-2:Tier-1 `ratio` and
    /// over-subscription factor `os` (paper §3.5 sweeps both).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` or `os` is not strictly positive, or if the
    /// shift would reduce Tier-1 below one page.
    pub fn scaled(scale_shift: u32, ratio: f64, os: f64) -> TierGeometry {
        assert!(
            ratio > 0.0 && os > 0.0,
            "ratio and over-subscription must be positive"
        );
        let tier1_pages = PAPER_TIER1_PAGES >> scale_shift;
        assert!(tier1_pages > 0, "scale shift too large");
        TierGeometry::from_tier1(tier1_pages, ratio, os)
    }

    /// Builds a geometry from an explicit Tier-1 page count, a
    /// Tier-2:Tier-1 `ratio` and an over-subscription factor `os`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn from_tier1(tier1_pages: usize, ratio: f64, os: f64) -> TierGeometry {
        assert!(tier1_pages > 0, "tier-1 must hold at least one page");
        assert!(
            ratio > 0.0 && os > 0.0,
            "ratio and over-subscription must be positive"
        );
        let tier2_pages = ((tier1_pages as f64) * ratio).round() as usize;
        let total_pages = (((tier1_pages + tier2_pages) as f64) * os).round() as usize;
        TierGeometry {
            page_bytes: PAGE_BYTES,
            tier1_pages,
            tier2_pages,
            total_pages,
        }
    }

    /// Builds a geometry *backwards* from a fixed working-set size, the way
    /// the paper handles graph applications (§3.5: the graph is what it
    /// is; Tier-1/Tier-2 capacities are scaled around it).
    ///
    /// # Panics
    ///
    /// Panics if the derived Tier-1 capacity would be zero.
    pub fn from_total(total_pages: usize, ratio: f64, os: f64) -> TierGeometry {
        assert!(
            ratio > 0.0 && os > 0.0,
            "ratio and over-subscription must be positive"
        );
        let tier1_pages = (total_pages as f64 / (os * (1.0 + ratio))).round() as usize;
        assert!(
            tier1_pages > 0,
            "working set too small for this ratio/over-subscription"
        );
        let tier2_pages = ((tier1_pages as f64) * ratio).round() as usize;
        TierGeometry {
            page_bytes: PAGE_BYTES,
            tier1_pages,
            tier2_pages,
            total_pages,
        }
    }

    /// The over-subscription factor: working set / (Tier-1 + Tier-2).
    pub fn oversubscription(&self) -> f64 {
        self.total_pages as f64 / (self.tier1_pages + self.tier2_pages) as f64
    }

    /// The Tier-2:Tier-1 capacity ratio.
    pub fn ratio(&self) -> f64 {
        self.tier2_pages as f64 / self.tier1_pages as f64
    }

    /// Tier-1 capacity in bytes.
    pub fn tier1_bytes(&self) -> u64 {
        self.tier1_pages as u64 * self.page_bytes
    }

    /// Tier-2 capacity in bytes.
    pub fn tier2_bytes(&self) -> u64 {
        self.tier2_pages as u64 * self.page_bytes
    }

    /// Working-set size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages as u64 * self.page_bytes
    }
}

impl Default for TierGeometry {
    /// The benchmark default: the paper's ratios at a 1/64 scale.
    fn default() -> TierGeometry {
        TierGeometry::paper_default(6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_unscaled_matches_paper_capacities() {
        let g = TierGeometry::paper_default(0);
        assert_eq!(g.tier1_bytes(), 16u64 << 30);
        assert_eq!(g.tier2_bytes(), 64u64 << 30);
        assert_eq!(g.total_bytes(), 160u64 << 30);
    }

    #[test]
    fn ratios_survive_scaling() {
        for shift in [0u32, 3, 6, 9] {
            let g = TierGeometry::paper_default(shift);
            assert!((g.ratio() - 4.0).abs() < 1e-9, "shift {shift}");
            assert!((g.oversubscription() - 2.0).abs() < 1e-9, "shift {shift}");
        }
    }

    #[test]
    fn custom_ratio_and_os() {
        let g = TierGeometry::from_tier1(1024, 2.0, 4.0);
        assert_eq!(g.tier2_pages, 2048);
        assert_eq!(g.total_pages, 4 * (1024 + 2048));
    }

    #[test]
    fn from_total_inverts_from_tier1() {
        let g = TierGeometry::from_total(6144, 4.0, 2.0);
        assert_eq!(g.total_pages, 6144);
        assert!((g.oversubscription() - 2.0).abs() < 0.01);
        assert!((g.ratio() - 4.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "scale shift too large")]
    fn absurd_shift_panics() {
        let _ = TierGeometry::paper_default(40);
    }

    #[test]
    fn default_is_small_but_proportional() {
        let g = TierGeometry::default();
        assert_eq!(g.tier1_pages, 4096);
        assert_eq!(g.tier2_pages, 16384);
    }
}
