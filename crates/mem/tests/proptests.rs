//! Property tests for the memory vocabulary crate.

use gmt_mem::{trace, PageId, WarpAccess};
use proptest::prelude::*;

fn arb_access() -> impl Strategy<Value = WarpAccess> {
    (
        proptest::collection::vec(any::<u64>(), 1..32),
        any::<bool>(),
    )
        .prop_map(|(mut pages, write)| {
            // Distinct pages, as the coalescer guarantees.
            pages.sort_unstable();
            pages.dedup();
            WarpAccess::scattered(pages.into_iter().map(PageId).collect(), write)
        })
}

proptest! {
    #[test]
    fn trace_roundtrips_arbitrary_accesses(
        accesses in proptest::collection::vec(arb_access(), 0..200),
    ) {
        let bytes = trace::encode(&accesses);
        let decoded = trace::decode(&bytes).expect("well-formed encoding decodes");
        prop_assert_eq!(decoded, accesses);
    }

    #[test]
    fn truncated_traces_never_panic(
        accesses in proptest::collection::vec(arb_access(), 1..50),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = trace::encode(&accesses);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        // Any prefix must decode cleanly or return an error — no panic.
        let _ = trace::decode(&bytes[..cut]);
    }

    #[test]
    fn corrupted_headers_never_panic(
        accesses in proptest::collection::vec(arb_access(), 1..20),
        index in any::<prop::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = trace::encode(&accesses).to_vec();
        let i = index.index(bytes.len());
        bytes[i] = byte;
        let _ = trace::decode(&bytes);
    }

    #[test]
    fn pageset_iteration_matches_len(access in arb_access()) {
        prop_assert_eq!(access.pages.iter().count(), access.pages.len());
        prop_assert!(!access.pages.is_empty());
    }
}
