//! Differential property tests: the dense page-handle structures
//! ([`ClockList`], [`FifoCache`]) against hash-indexed reference models.
//!
//! The tentpole flattening replaced `HashMap`/`HashSet` page indices
//! with grow-on-demand dense tables. These tests re-implement the
//! *original* hash-indexed semantics as oracles and drive both through
//! random op interleavings: every decision — victims, candidate sweeps,
//! membership, lengths — must be identical, which is what keeps the
//! golden traces byte-for-byte stable across the data-layout change.

use std::collections::{HashMap, HashSet, VecDeque};

use gmt_mem::{ClockList, FifoCache, PageId};
use proptest::prelude::*;

/// The pre-flattening clock: identical algorithm, `HashMap` index.
struct ClockRef {
    slots: Vec<Option<(PageId, bool)>>,
    index: HashMap<PageId, usize>,
    free: Vec<usize>,
    hand: usize,
    capacity: usize,
}

impl ClockRef {
    fn new(capacity: usize) -> ClockRef {
        ClockRef {
            slots: Vec::new(),
            index: HashMap::new(),
            free: Vec::new(),
            hand: 0,
            capacity,
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    fn contains(&self, page: PageId) -> bool {
        self.index.contains_key(&page)
    }

    fn touch(&mut self, page: PageId) -> bool {
        match self.index.get(&page) {
            Some(&i) => {
                self.slots[i].as_mut().unwrap().1 = true;
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, page: PageId) {
        let slot = (page, true);
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.index.insert(page, i);
    }

    fn candidate(&mut self) -> Option<PageId> {
        if self.index.is_empty() {
            return None;
        }
        loop {
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
            match &mut self.slots[self.hand] {
                None => self.hand += 1,
                Some((_, referenced)) if *referenced => {
                    *referenced = false;
                    self.hand += 1;
                }
                Some((page, _)) => return Some(*page),
            }
        }
    }

    fn skip_candidate(&mut self) {
        let page = self.candidate().unwrap();
        let i = self.index[&page];
        self.slots[i].as_mut().unwrap().1 = true;
        self.hand = i + 1;
    }

    fn replace_candidate(&mut self, new: PageId) -> PageId {
        let victim = self.candidate().unwrap();
        let i = self.index.remove(&victim).unwrap();
        self.slots[i] = Some((new, true));
        self.index.insert(new, i);
        self.hand = i + 1;
        victim
    }

    fn evict_candidate(&mut self) -> PageId {
        let victim = self.candidate().unwrap();
        let i = self.index.remove(&victim).unwrap();
        self.slots[i] = None;
        self.free.push(i);
        self.hand = i + 1;
        victim
    }

    fn remove(&mut self, page: PageId) -> bool {
        match self.index.remove(&page) {
            Some(i) => {
                self.slots[i] = None;
                self.free.push(i);
                true
            }
            None => false,
        }
    }
}

/// The pre-flattening FIFO: lazy-deletion queue plus a `HashSet`.
struct FifoRef {
    queue: VecDeque<PageId>,
    resident: HashSet<PageId>,
    capacity: usize,
}

impl FifoRef {
    fn new(capacity: usize) -> FifoRef {
        FifoRef {
            queue: VecDeque::new(),
            resident: HashSet::new(),
            capacity,
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.resident.contains(&page)
    }

    fn pop_oldest(&mut self) -> PageId {
        loop {
            let page = self.queue.pop_front().expect("a resident page exists");
            if self.resident.remove(&page) {
                return page;
            }
        }
    }

    fn insert_evicting(&mut self, page: PageId) -> Option<PageId> {
        let victim = if self.resident.len() == self.capacity {
            Some(self.pop_oldest())
        } else {
            None
        };
        self.resident.insert(page);
        self.queue.push_back(page);
        victim
    }

    fn insert_if_room(&mut self, page: PageId) -> bool {
        if self.resident.len() == self.capacity {
            return false;
        }
        self.resident.insert(page);
        self.queue.push_back(page);
        true
    }

    fn remove(&mut self, page: PageId) -> bool {
        self.resident.remove(&page)
    }
}

#[derive(Debug, Clone)]
enum ClockOp {
    Touch(u64),
    Insert(u64),
    Replace(u64),
    Skip,
    Evict,
    Remove(u64),
    Candidate,
}

/// Decodes a `(selector, page)` pair into a clock op (the vendored
/// proptest shim has no `prop_oneof`, so the mix is decoded by hand).
fn clock_op(sel: u8, page: u64) -> ClockOp {
    match sel {
        0..=2 => ClockOp::Touch(page),
        3..=5 => ClockOp::Insert(page),
        6..=8 => ClockOp::Replace(page),
        9 => ClockOp::Skip,
        10 => ClockOp::Evict,
        11 | 12 => ClockOp::Remove(page),
        _ => ClockOp::Candidate,
    }
}

#[derive(Debug, Clone)]
enum FifoOp {
    InsertEvicting(u64),
    InsertIfRoom(u64),
    Remove(u64),
    Contains(u64),
}

fn fifo_op(sel: u8, page: u64) -> FifoOp {
    match sel {
        0..=2 => FifoOp::InsertEvicting(page),
        3 | 4 => FifoOp::InsertIfRoom(page),
        5 | 6 => FifoOp::Remove(page),
        _ => FifoOp::Contains(page),
    }
}

proptest! {
    #[test]
    fn clock_matches_hash_indexed_reference(
        capacity in 1usize..12,
        raw in proptest::collection::vec((0u8..14, 0u64..48), 1..400),
    ) {
        let mut dense = ClockList::new(capacity);
        let mut oracle = ClockRef::new(capacity);
        for (sel, page) in raw {
            match clock_op(sel, page) {
                ClockOp::Touch(p) => {
                    prop_assert_eq!(dense.touch(PageId(p)), oracle.touch(PageId(p)));
                }
                ClockOp::Insert(p) => {
                    prop_assert_eq!(dense.contains(PageId(p)), oracle.contains(PageId(p)));
                    if !dense.is_full() && !dense.contains(PageId(p)) {
                        dense.insert(PageId(p));
                        oracle.insert(PageId(p));
                    }
                }
                ClockOp::Replace(p) => {
                    if !dense.is_empty() && !dense.contains(PageId(p)) {
                        prop_assert_eq!(
                            dense.replace_candidate(PageId(p)),
                            oracle.replace_candidate(PageId(p))
                        );
                    }
                }
                ClockOp::Skip => {
                    if !dense.is_empty() {
                        dense.skip_candidate();
                        oracle.skip_candidate();
                    }
                }
                ClockOp::Evict => {
                    if !dense.is_empty() {
                        prop_assert_eq!(dense.evict_candidate(), oracle.evict_candidate());
                    }
                }
                ClockOp::Remove(p) => {
                    prop_assert_eq!(dense.remove(PageId(p)), oracle.remove(PageId(p)));
                }
                ClockOp::Candidate => {
                    prop_assert_eq!(dense.candidate(), oracle.candidate());
                }
            }
            prop_assert_eq!(dense.len(), oracle.len());
            prop_assert_eq!(dense.is_full(), oracle.is_full());
        }
        // Final drain: eviction order must agree to the very last page.
        while !dense.is_empty() {
            prop_assert_eq!(dense.evict_candidate(), oracle.evict_candidate());
        }
        prop_assert_eq!(oracle.len(), 0);
    }

    #[test]
    fn fifo_matches_hash_set_reference(
        capacity in 1usize..10,
        raw in proptest::collection::vec((0u8..8, 0u64..48), 1..400),
    ) {
        let mut dense = FifoCache::new(capacity);
        let mut oracle = FifoRef::new(capacity);
        for (sel, page) in raw {
            match fifo_op(sel, page) {
                FifoOp::InsertEvicting(p) => {
                    if !dense.contains(PageId(p)) {
                        prop_assert_eq!(
                            dense.insert_evicting(PageId(p)),
                            oracle.insert_evicting(PageId(p))
                        );
                    }
                }
                FifoOp::InsertIfRoom(p) => {
                    if !dense.contains(PageId(p)) {
                        prop_assert_eq!(
                            dense.insert_if_room(PageId(p)),
                            oracle.insert_if_room(PageId(p))
                        );
                    }
                }
                FifoOp::Remove(p) => {
                    prop_assert_eq!(dense.remove(PageId(p)), oracle.remove(PageId(p)));
                }
                FifoOp::Contains(p) => {
                    prop_assert_eq!(dense.contains(PageId(p)), oracle.contains(PageId(p)));
                }
            }
            prop_assert_eq!(dense.len(), oracle.resident.len());
            let mut expected: Vec<PageId> = oracle.resident.iter().copied().collect();
            expected.sort_unstable();
            let got: Vec<PageId> = dense.iter().collect();
            prop_assert_eq!(got, expected, "iter() must list residents in page order");
        }
    }
}
