//! The 3-state Markov tier predictor (paper §2.1.3 step 2, Fig. 5).
//!
//! Each state is the "correct" tier a page *should have been* placed in at
//! one of its Tier-1 evictions — computable in hindsight when the page
//! returns to Tier-1, because its exact RVTD/RRD since eviction is then
//! known. A page carries its last two correct tiers; when the newer one
//! becomes known, the transition `older → newer` is reinforced. At the
//! next eviction, the predictor follows the heaviest transition out of the
//! page's last correct tier.
//!
//! The paper notes that per-page state is "negligible"; we keep the
//! two-tier history per page ([`PageHistory`], 2 × 2 bits' worth) and the
//! 3×3 transition weights either globally shared (the default) or per page
//! (an ablation configuration).

use gmt_mem::Tier;
use serde::{Deserialize, Serialize};

/// A 3×3 transition-weight matrix over tiers.
///
/// # Examples
///
/// ```
/// use gmt_mem::Tier;
/// use gmt_reuse::MarkovPredictor;
///
/// let mut m = MarkovPredictor::new();
/// m.reinforce(Tier::Host, Tier::Ssd);
/// m.reinforce(Tier::Host, Tier::Ssd);
/// m.reinforce(Tier::Host, Tier::Gpu);
/// assert_eq!(m.predict(Tier::Host), Tier::Ssd);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MarkovPredictor {
    weights: [[u64; 3]; 3],
}

impl MarkovPredictor {
    /// Creates a predictor with all-zero weights.
    pub fn new() -> MarkovPredictor {
        MarkovPredictor::default()
    }

    /// Reinforces the transition `from → to` by one.
    pub fn reinforce(&mut self, from: Tier, to: Tier) {
        let w = &mut self.weights[from.index()][to.index()];
        *w = w.saturating_add(1);
    }

    /// Predicts the next correct tier given the last correct tier `from`:
    /// the heaviest outgoing transition. With no evidence for `from`, the
    /// prediction is `from` itself (a page that was medium-reuse last time
    /// is assumed medium-reuse again); ties go to the nearest tier, which
    /// errs towards keeping data close to the GPU.
    pub fn predict(&self, from: Tier) -> Tier {
        let row = &self.weights[from.index()];
        if row.iter().all(|&w| w == 0) {
            return from;
        }
        let mut best = Tier::Gpu;
        let mut best_w = 0u64;
        for t in Tier::ALL {
            let w = row[t.index()];
            if w > best_w {
                best = t;
                best_w = w;
            }
        }
        best
    }

    /// The raw weight of the transition `from → to`.
    pub fn weight(&self, from: Tier, to: Tier) -> u64 {
        self.weights[from.index()][to.index()]
    }

    /// Total observed transitions.
    pub fn total(&self) -> u64 {
        self.weights.iter().flatten().sum()
    }
}

/// A page's last two *correct* tiers, in eviction order.
///
/// Updated when the page returns to Tier-1 and its true RRD since the last
/// eviction becomes known; read when the page next comes up for eviction.
///
/// # Examples
///
/// ```
/// use gmt_mem::Tier;
/// use gmt_reuse::{MarkovPredictor, PageHistory};
///
/// let mut predictor = MarkovPredictor::new();
/// let mut history = PageHistory::default();
/// history.observe(Tier::Host, &mut predictor);        // first outcome
/// history.observe(Tier::Ssd, &mut predictor);         // trains Host -> Ssd
/// assert_eq!(history.last(), Some(Tier::Ssd));
/// assert_eq!(predictor.weight(Tier::Host, Tier::Ssd), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PageHistory {
    prev: Option<Tier>,
    prev2: Option<Tier>,
}

impl PageHistory {
    /// Records the newest known correct tier; if an older one exists, the
    /// `older → newer` transition is reinforced in `predictor`.
    pub fn observe(&mut self, correct: Tier, predictor: &mut MarkovPredictor) {
        if let Some(prev) = self.prev {
            predictor.reinforce(prev, correct);
        }
        self.prev2 = self.prev;
        self.prev = Some(correct);
    }

    /// The most recent correct tier, if any eviction has completed a
    /// round trip.
    pub fn last(&self) -> Option<Tier> {
        self.prev
    }

    /// The second most recent correct tier.
    pub fn second_last(&self) -> Option<Tier> {
        self.prev2
    }

    /// Whether any history has accumulated.
    pub fn is_empty(&self) -> bool {
        self.prev.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_pattern_predicts_itself() {
        // MultiVectorAdd-like: the same correct tier at every eviction
        // (paper Fig. 4b).
        let mut p = MarkovPredictor::new();
        let mut h = PageHistory::default();
        for _ in 0..5 {
            h.observe(Tier::Host, &mut p);
        }
        assert_eq!(p.predict(h.last().unwrap()), Tier::Host);
    }

    #[test]
    fn alternating_pattern_is_learned() {
        // PageRank-like: tiers alternate between evictions (paper Fig. 4c).
        let mut p = MarkovPredictor::new();
        let mut h = PageHistory::default();
        for i in 0..10 {
            let t = if i % 2 == 0 { Tier::Host } else { Tier::Ssd };
            h.observe(t, &mut p);
        }
        // Last correct tier was Ssd; the learned transition says Host next.
        assert_eq!(h.last(), Some(Tier::Ssd));
        assert_eq!(p.predict(Tier::Ssd), Tier::Host);
        assert_eq!(p.predict(Tier::Host), Tier::Ssd);
    }

    #[test]
    fn no_evidence_predicts_same_tier() {
        let p = MarkovPredictor::new();
        for t in Tier::ALL {
            assert_eq!(p.predict(t), t);
        }
    }

    #[test]
    fn heavier_transition_wins() {
        let mut p = MarkovPredictor::new();
        for _ in 0..3 {
            p.reinforce(Tier::Gpu, Tier::Ssd);
        }
        p.reinforce(Tier::Gpu, Tier::Host);
        assert_eq!(p.predict(Tier::Gpu), Tier::Ssd);
        assert_eq!(p.total(), 4);
    }

    #[test]
    fn history_shifts_like_a_two_entry_queue() {
        let mut p = MarkovPredictor::new();
        let mut h = PageHistory::default();
        assert!(h.is_empty());
        h.observe(Tier::Gpu, &mut p);
        h.observe(Tier::Host, &mut p);
        h.observe(Tier::Ssd, &mut p);
        assert_eq!(h.last(), Some(Tier::Ssd));
        assert_eq!(h.second_last(), Some(Tier::Host));
        // Transitions recorded: Gpu->Host, Host->Ssd.
        assert_eq!(p.weight(Tier::Gpu, Tier::Host), 1);
        assert_eq!(p.weight(Tier::Host, Tier::Ssd), 1);
        assert_eq!(p.weight(Tier::Ssd, Tier::Gpu), 0);
    }

    #[test]
    fn first_observation_trains_nothing() {
        let mut p = MarkovPredictor::new();
        let mut h = PageHistory::default();
        h.observe(Tier::Ssd, &mut p);
        assert_eq!(p.total(), 0);
    }
}
