//! Miss-ratio curves from exact reuse distances (Mattson's stack
//! algorithm).
//!
//! Because LRU obeys the stack-inclusion property, one pass collecting
//! exact reuse distances yields the miss ratio of *every* capacity at
//! once: an access with reuse distance `d` hits any LRU cache with more
//! than `d` slots. The paper's Fig. 7 intuition — "what fraction of reuse
//! falls within Tier-1 / Tier-1+Tier-2" — is exactly two points on this
//! curve, so the MRC makes tier-capacity planning quantitative.

use gmt_mem::PageId;

use crate::olken::ReuseTracker;

/// A miss-ratio curve built from one trace pass.
///
/// # Examples
///
/// ```
/// use gmt_mem::PageId;
/// use gmt_reuse::mrc::MissRatioCurve;
///
/// // Cyclic scan over 10 pages: caches smaller than 10 always miss,
/// // caches of 10+ only take cold misses.
/// let trace = (0..5).flat_map(|_| (0..10u64).map(PageId));
/// let mrc = MissRatioCurve::from_trace(trace);
/// assert_eq!(mrc.miss_ratio(5), 1.0);
/// assert!(mrc.miss_ratio(10) < 0.25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MissRatioCurve {
    /// Finite reuse distances, sorted ascending.
    sorted_rds: Vec<u64>,
    /// First-touch (compulsory) misses.
    cold: u64,
    /// Total accesses.
    total: u64,
}

impl MissRatioCurve {
    /// Builds the curve from a page-touch stream.
    pub fn from_trace(trace: impl IntoIterator<Item = PageId>) -> MissRatioCurve {
        let mut tracker = ReuseTracker::new();
        let mut sorted_rds = Vec::new();
        let mut cold = 0u64;
        let mut total = 0u64;
        for page in trace {
            total += 1;
            match tracker.record(page).rd.finite() {
                Some(rd) => sorted_rds.push(rd),
                None => cold += 1,
            }
        }
        sorted_rds.sort_unstable();
        MissRatioCurve {
            sorted_rds,
            cold,
            total,
        }
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.total
    }

    /// Compulsory (first-touch) misses.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Misses an LRU cache of `capacity` pages would take on this trace.
    ///
    /// An access with reuse distance `d` hits iff `d < capacity`.
    pub fn misses_at(&self, capacity: usize) -> u64 {
        let hits = self.sorted_rds.partition_point(|&rd| rd < capacity as u64) as u64;
        self.total - hits
    }

    /// Miss ratio at `capacity` (1.0 for an empty trace).
    pub fn miss_ratio(&self, capacity: usize) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.misses_at(capacity) as f64 / self.total as f64
    }

    /// `(capacity, miss_ratio)` points at the given capacities.
    pub fn sample(&self, capacities: &[usize]) -> Vec<(usize, f64)> {
        capacities
            .iter()
            .map(|&c| (c, self.miss_ratio(c)))
            .collect()
    }

    /// The smallest capacity achieving at most `target` miss ratio, if
    /// any capacity can (cold misses set the floor).
    pub fn capacity_for(&self, target: f64) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let floor = self.cold as f64 / self.total as f64;
        if target < floor {
            return None;
        }
        // Miss ratio is non-increasing in capacity: binary search over the
        // distinct reuse distances.
        let max_needed = self.sorted_rds.last().map(|&d| d as usize + 1).unwrap_or(0);
        let (mut lo, mut hi) = (0usize, max_needed);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.miss_ratio(mid) <= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        (self.miss_ratio(lo) <= target).then_some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyclic(pages: u64, rounds: usize) -> Vec<PageId> {
        (0..rounds).flat_map(|_| (0..pages).map(PageId)).collect()
    }

    #[test]
    fn cyclic_scan_is_a_step_function() {
        let mrc = MissRatioCurve::from_trace(cyclic(20, 10));
        assert_eq!(mrc.miss_ratio(19), 1.0, "LRU thrashes below the loop size");
        // At exactly 20 pages the distances (19) fit: only colds miss.
        let at_ws = mrc.miss_ratio(20);
        assert!((at_ws - 0.1).abs() < 1e-9, "cold misses only: {at_ws}");
    }

    #[test]
    fn monotone_non_increasing() {
        let mut trace = cyclic(8, 3);
        trace.extend(cyclic(40, 2));
        let mrc = MissRatioCurve::from_trace(trace);
        let mut prev = 1.0f64;
        for c in 0..64 {
            let r = mrc.miss_ratio(c);
            assert!(r <= prev + 1e-12, "capacity {c}: {r} > {prev}");
            prev = r;
        }
    }

    #[test]
    fn capacity_for_finds_the_knee() {
        let mrc = MissRatioCurve::from_trace(cyclic(16, 20));
        // Cold ratio = 16/320 = 0.05; reachable just at the loop size.
        assert_eq!(mrc.capacity_for(0.06), Some(16));
        assert_eq!(mrc.capacity_for(0.01), None, "below the cold floor");
    }

    #[test]
    fn counts_are_consistent() {
        let mrc = MissRatioCurve::from_trace(cyclic(4, 5));
        assert_eq!(mrc.accesses(), 20);
        assert_eq!(mrc.cold_misses(), 4);
        assert_eq!(mrc.misses_at(usize::MAX), 4);
        assert_eq!(mrc.misses_at(0), 20);
    }

    #[test]
    fn empty_trace_is_total_miss() {
        let mrc = MissRatioCurve::from_trace(std::iter::empty());
        assert_eq!(mrc.miss_ratio(100), 1.0);
        assert_eq!(mrc.capacity_for(0.5), None);
    }

    #[test]
    fn sample_returns_requested_points() {
        let mrc = MissRatioCurve::from_trace(cyclic(10, 4));
        let points = mrc.sample(&[5, 10, 20]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].0, 5);
        assert!(points[2].1 <= points[0].1);
    }
}
