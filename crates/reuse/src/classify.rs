//! Eq. 1: classifying a Remaining Reuse Distance onto a tier.
//!
//! ```text
//! T(RRD) = short-reuse   if RRD <  |Tier1|
//!          medium-reuse  if |Tier1| <= RRD < |Tier2|
//!          long-reuse    if RRD >= |Tier2|
//! ```
//!
//! short-reuse pages stay in Tier-1, medium-reuse victims go to host
//! memory, long-reuse victims go to (or stay on) the SSD.

use gmt_mem::{Tier, TierGeometry};
use serde::{Deserialize, Serialize};

use crate::LinearFit;

/// The Eq. 1 classifier, parameterized by tier capacities in pages.
///
/// # Examples
///
/// ```
/// use gmt_mem::Tier;
/// use gmt_reuse::TierClassifier;
///
/// let c = TierClassifier::new(1024, 4096);
/// assert_eq!(c.classify(100), Tier::Gpu);
/// assert_eq!(c.classify(2048), Tier::Host);
/// assert_eq!(c.classify(100_000), Tier::Ssd);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierClassifier {
    tier1_pages: u64,
    tier2_pages: u64,
}

impl TierClassifier {
    /// Creates a classifier from tier capacities in pages.
    ///
    /// # Panics
    ///
    /// Panics if `tier1_pages` is zero or `tier2_pages < tier1_pages`
    /// would invert the class boundaries.
    pub fn new(tier1_pages: u64, tier2_pages: u64) -> TierClassifier {
        assert!(tier1_pages > 0, "tier-1 must hold at least one page");
        assert!(
            tier2_pages >= tier1_pages,
            "Eq. 1 assumes tier-2 is at least as large as tier-1"
        );
        TierClassifier {
            tier1_pages,
            tier2_pages,
        }
    }

    /// Builds the classifier from a [`TierGeometry`].
    pub fn from_geometry(geometry: &TierGeometry) -> TierClassifier {
        TierClassifier::new(geometry.tier1_pages as u64, geometry.tier2_pages as u64)
    }

    /// Classifies an RRD (in pages) onto its tier (Eq. 1).
    pub fn classify(&self, rrd: u64) -> Tier {
        if rrd < self.tier1_pages {
            Tier::Gpu
        } else if rrd < self.tier2_pages {
            Tier::Host
        } else {
            Tier::Ssd
        }
    }

    /// Classifies a *remaining VTD* by first projecting it to an RRD with
    /// the fitted linear relation (§2.1.3 step 1: `RRD = m·RVTD + b`).
    pub fn classify_rvtd(&self, rvtd: u64, fit: &LinearFit) -> Tier {
        self.classify(fit.predict(rvtd as f64).round() as u64)
    }

    /// Tier-1 capacity boundary (pages).
    pub fn tier1_pages(&self) -> u64 {
        self.tier1_pages
    }

    /// Tier-1+Tier-2 boundary used for the long-reuse class (pages).
    pub fn tier2_pages(&self) -> u64 {
        self.tier2_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_half_open() {
        let c = TierClassifier::new(10, 100);
        assert_eq!(c.classify(9), Tier::Gpu);
        assert_eq!(c.classify(10), Tier::Host);
        assert_eq!(c.classify(99), Tier::Host);
        assert_eq!(c.classify(100), Tier::Ssd);
    }

    #[test]
    fn rvtd_projection_applies_fit() {
        let c = TierClassifier::new(10, 100);
        // Fit halves the RVTD: an RVTD of 18 is an RRD of 9 -> Tier-1.
        let fit = LinearFit {
            slope: 0.5,
            intercept: 0.0,
        };
        assert_eq!(c.classify_rvtd(18, &fit), Tier::Gpu);
        assert_eq!(c.classify_rvtd(20, &fit), Tier::Host);
    }

    #[test]
    fn from_geometry_uses_page_counts() {
        let g = TierGeometry::from_tier1(100, 4.0, 2.0);
        let c = TierClassifier::from_geometry(&g);
        assert_eq!(c.tier1_pages(), 100);
        assert_eq!(c.tier2_pages(), 400);
    }

    #[test]
    #[should_panic(expected = "tier-2 is at least as large")]
    fn inverted_capacities_rejected() {
        let _ = TierClassifier::new(100, 10);
    }
}
