//! Incremental Ordinary Least Squares for the `RD = m·VTD + b` relation.
//!
//! The paper observes (Fig. 4a) that unique reuse distance is very nearly a
//! linear function of the cheap-to-measure VTD, and fits the relation by
//! OLS over a few hundred thousand sampled pairs on a host thread. The fit
//! here is streaming — constant memory, samples can keep arriving — which
//! is what lets the pipeline refine `m`/`b` every batch (§2.1.3 step 1).

use serde::{Deserialize, Serialize};

/// A fitted linear relation `y = m·x + b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope `m`.
    pub slope: f64,
    /// Intercept `b`.
    pub intercept: f64,
}

impl LinearFit {
    /// The identity fit (`RD = VTD`) — the conservative default before any
    /// samples arrive, since VTD upper-bounds RD.
    pub fn identity() -> LinearFit {
        LinearFit {
            slope: 1.0,
            intercept: 0.0,
        }
    }

    /// Evaluates the fit, clamping negative predictions to zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use gmt_reuse::LinearFit;
    /// let f = LinearFit { slope: 0.5, intercept: -10.0 };
    /// assert_eq!(f.predict(100.0), 40.0);
    /// assert_eq!(f.predict(0.0), 0.0);
    /// ```
    pub fn predict(&self, x: f64) -> f64 {
        (self.slope * x + self.intercept).max(0.0)
    }
}

/// Streaming OLS accumulator.
///
/// # Examples
///
/// ```
/// use gmt_reuse::Ols;
/// let mut ols = Ols::new();
/// for x in 0..100u64 {
///     ols.add(x as f64, (2 * x + 3) as f64);
/// }
/// let fit = ols.fit().expect("enough samples");
/// assert!((fit.slope - 2.0).abs() < 1e-9);
/// assert!((fit.intercept - 3.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Ols {
    n: u64,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_xy: f64,
}

impl Ols {
    /// Creates an empty accumulator.
    pub fn new() -> Ols {
        Ols::default()
    }

    /// Adds one `(x, y)` sample.
    pub fn add(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sum_x += x;
        self.sum_y += y;
        self.sum_xx += x * x;
        self.sum_xy += x * y;
    }

    /// Number of samples accumulated.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Fits the line, or `None` with fewer than 2 samples or a degenerate
    /// (zero-variance) `x`.
    pub fn fit(&self) -> Option<LinearFit> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let denom = n * self.sum_xx - self.sum_x * self.sum_x;
        if denom.abs() < f64::EPSILON * n * self.sum_xx.max(1.0) {
            return None;
        }
        let slope = (n * self.sum_xy - self.sum_x * self.sum_y) / denom;
        let intercept = (self.sum_y - slope * self.sum_x) / n;
        Some(LinearFit { slope, intercept })
    }

    /// Merges another accumulator (e.g. a batch fitted on another thread).
    pub fn merge(&mut self, other: &Ols) {
        self.n += other.n;
        self.sum_x += other.sum_x;
        self.sum_y += other.sum_y;
        self.sum_xx += other.sum_xx;
        self.sum_xy += other.sum_xy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn exact_line_recovered() {
        let mut ols = Ols::new();
        for x in [1.0, 2.0, 5.0, 9.0] {
            ols.add(x, 3.0 * x - 1.0);
        }
        let f = ols.fit().unwrap();
        assert!((f.slope - 3.0).abs() < 1e-9);
        assert!((f.intercept + 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_recovered_approximately() {
        let mut rng = gmt_sim::rng::seeded(5);
        let mut ols = Ols::new();
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.0..1e6);
            let noise: f64 = rng.gen_range(-500.0..500.0);
            ols.add(x, 0.4 * x + 1000.0 + noise);
        }
        let f = ols.fit().unwrap();
        assert!((f.slope - 0.4).abs() < 0.01, "slope {}", f.slope);
        assert!(
            (f.intercept - 1000.0).abs() < 100.0,
            "intercept {}",
            f.intercept
        );
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        let mut ols = Ols::new();
        assert!(ols.fit().is_none());
        ols.add(5.0, 1.0);
        assert!(ols.fit().is_none());
        ols.add(5.0, 9.0); // zero x-variance
        assert!(ols.fit().is_none());
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = Ols::new();
        let mut b = Ols::new();
        let mut all = Ols::new();
        for i in 0..100u64 {
            let (x, y) = (i as f64, (7 * i + 2) as f64);
            if i % 2 == 0 {
                a.add(x, y)
            } else {
                b.add(x, y)
            }
            all.add(x, y);
        }
        a.merge(&b);
        assert_eq!(a.fit(), all.fit());
        assert_eq!(a.samples(), 100);
    }

    #[test]
    fn predict_clamps_negative() {
        let f = LinearFit {
            slope: 1.0,
            intercept: -100.0,
        };
        assert_eq!(f.predict(10.0), 0.0);
    }

    #[test]
    fn identity_fit_is_conservative() {
        let f = LinearFit::identity();
        assert_eq!(f.predict(1234.0), 1234.0);
    }
}
