//! Reuse-distance machinery for GMT's placement policy (paper §2.1.3).
//!
//! GMT-Reuse decides, at every Tier-1 eviction, which tier the victim's
//! *Remaining Reuse Distance* (RRD) falls into. Doing that practically
//! requires four pieces, each a module here:
//!
//! * [`olken`] — exact (unique) reuse distances from an access stream via
//!   the classic tree-based method, used on the "CPU side" to turn sampled
//!   VTDs into training pairs,
//! * [`ols`] — incremental Ordinary Least Squares fitting of the linear
//!   `RD = m·VTD + b` relation the paper observes (Fig. 4a),
//! * [`sampler`] — the GPU→CPU sampling pipeline: samples are batched
//!   (10 000 at a time in the paper) and the regression is refined
//!   iteratively while the application runs,
//! * [`classify`] — Eq. 1: mapping a predicted RRD onto
//!   short/medium/long-reuse, i.e. onto a tier,
//! * [`markov`] — the 3-state Markov chain (Fig. 5) that predicts the
//!   *next* RVTD class of an eviction candidate from its last two
//!   "correct tier" outcomes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod markov;
pub mod mrc;
pub mod olken;
pub mod ols;
pub mod sampler;

pub use classify::TierClassifier;
pub use markov::{MarkovPredictor, PageHistory};
pub use olken::{Distance, ReuseTracker};
pub use ols::{LinearFit, Ols};
pub use sampler::{PipelinedRegression, SamplerConfig, SamplingRegression};
