//! The GPU→CPU sampling and regression pipeline (paper §2.1.3 step 1).
//!
//! Early in execution, the GPU pushes (page, access) samples into a queue
//! shared with the CPU; a dedicated host thread reconstructs true reuse
//! distances from them with the tree-based method and refines an OLS fit
//! of `RD = m·VTD + b`. The paper pipelines every 10 000 samples so the
//! GPU gets useful coefficients long before sampling completes.
//!
//! Two implementations are provided:
//!
//! * [`SamplingRegression`] — synchronous and deterministic; the GMT
//!   runtime uses this (the simulation clock is virtual, so "offloading"
//!   is a timing annotation, not a real thread),
//! * [`PipelinedRegression`] — a real host thread fed through a crossbeam
//!   channel, demonstrating and testing the paper's pipelined design.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Sender};
use gmt_mem::PageId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::olken::ReuseTracker;
use crate::{LinearFit, Ols};

/// Sampling-pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Stop refining after this many (VTD, RD) training pairs ("typically
    /// we collect hundreds of thousands", scaled down with capacity).
    pub sample_budget: usize,
    /// Refresh the fit every this many new pairs (paper: 10 000).
    pub batch_size: usize,
    /// Publish intermediate fits at every batch boundary (the paper's
    /// pipelined design, §2.1.3: "rather than wait until we get this
    /// final equation at the end of sampling"). Setting this to `false`
    /// withholds the fit until the budget completes — the ablation the
    /// paper argues against.
    pub pipelined: bool,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            sample_budget: 200_000,
            batch_size: 10_000,
            pipelined: true,
        }
    }
}

/// Synchronous sampling + regression.
///
/// Feed it every coalesced access during the sampling window; it maintains
/// the exact-reuse tree, accumulates (VTD, RD) pairs, and re-fits at every
/// batch boundary.
///
/// # Examples
///
/// ```
/// use gmt_mem::PageId;
/// use gmt_reuse::{SamplerConfig, SamplingRegression};
///
/// let mut s = SamplingRegression::new(SamplerConfig { sample_budget: 100, batch_size: 10, pipelined: true });
/// // A cyclic scan: RD and VTD are perfectly correlated.
/// for _ in 0..30 {
///     for p in 0..10u64 {
///         s.observe(PageId(p));
///     }
/// }
/// let fit = s.fit();
/// assert!(fit.slope > 0.0);
/// assert!(s.is_complete());
/// ```
#[derive(Debug)]
pub struct SamplingRegression {
    config: SamplerConfig,
    tracker: ReuseTracker,
    ols: Ols,
    pairs: usize,
    since_refresh: usize,
    fit: LinearFit,
}

impl SamplingRegression {
    /// Creates a pipeline with `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.batch_size` is zero.
    pub fn new(config: SamplerConfig) -> SamplingRegression {
        assert!(config.batch_size > 0, "batch size must be positive");
        SamplingRegression {
            config,
            tracker: ReuseTracker::new(),
            ols: Ols::new(),
            pairs: 0,
            since_refresh: 0,
            fit: LinearFit::identity(),
        }
    }

    /// Observes one coalesced access during the sampling window.
    ///
    /// Re-accesses produce a (VTD, RD) training pair; cold accesses only
    /// extend the tree. No-op once the budget is exhausted.
    pub fn observe(&mut self, page: PageId) {
        if self.is_complete() {
            return;
        }
        let d = self.tracker.record(page);
        if let (Some(rd), Some(vtd)) = (d.rd.finite(), d.vtd.finite()) {
            self.ols.add(vtd as f64, rd as f64);
            self.pairs += 1;
            self.since_refresh += 1;
            if self.since_refresh >= self.config.batch_size || self.is_complete() {
                self.refresh();
            }
        }
    }

    /// The best fit so far ([`LinearFit::identity`] before the first
    /// refresh).
    pub fn fit(&self) -> LinearFit {
        self.fit
    }

    /// Training pairs collected so far.
    pub fn pairs(&self) -> usize {
        self.pairs
    }

    /// Whether the sample budget has been exhausted.
    pub fn is_complete(&self) -> bool {
        self.pairs >= self.config.sample_budget
    }

    fn refresh(&mut self) {
        if self.config.pipelined || self.is_complete() {
            if let Some(fit) = self.ols.fit() {
                self.fit = fit;
            }
        }
        self.since_refresh = 0;
    }
}

/// Message from the GPU side to the regression thread.
enum Msg {
    Batch(Vec<PageId>),
    Done,
}

/// The pipelined variant: a real CPU thread consumes sample batches from a
/// crossbeam channel (the paper's shared GPU→CPU queue) and publishes
/// refined coefficients.
///
/// # Examples
///
/// ```
/// use gmt_mem::PageId;
/// use gmt_reuse::{PipelinedRegression, SamplerConfig};
///
/// let mut p = PipelinedRegression::spawn(SamplerConfig { sample_budget: 1_000, batch_size: 100, pipelined: true });
/// for _ in 0..50 {
///     for page in 0..20u64 {
///         p.observe(PageId(page));
///     }
/// }
/// let fit = p.finish();
/// assert!(fit.slope > 0.0);
/// ```
#[derive(Debug)]
pub struct PipelinedRegression {
    sender: Option<Sender<Msg>>,
    shared: Arc<Mutex<LinearFit>>,
    worker: Option<JoinHandle<()>>,
    buffer: Vec<PageId>,
    flush_every: usize,
}

impl PipelinedRegression {
    /// Spawns the regression thread.
    ///
    /// # Panics
    ///
    /// Panics if `config.batch_size` is zero.
    pub fn spawn(config: SamplerConfig) -> PipelinedRegression {
        let (sender, receiver) = channel::unbounded();
        let shared = Arc::new(Mutex::new(LinearFit::identity()));
        let published = Arc::clone(&shared);
        let worker = std::thread::spawn(move || {
            let mut sync = SamplingRegression::new(config);
            while let Ok(msg) = receiver.recv() {
                match msg {
                    Msg::Batch(pages) => {
                        for page in pages {
                            sync.observe(page);
                        }
                        *published.lock() = sync.fit();
                    }
                    Msg::Done => break,
                }
            }
        });
        PipelinedRegression {
            sender: Some(sender),
            shared,
            worker: Some(worker),
            buffer: Vec::new(),
            flush_every: config.batch_size.max(1),
        }
    }

    /// Buffers one access; ships a batch to the CPU thread when full.
    pub fn observe(&mut self, page: PageId) {
        self.buffer.push(page);
        if self.buffer.len() >= self.flush_every {
            self.flush();
        }
    }

    /// The most recently published fit (does not block on in-flight
    /// batches).
    pub fn current_fit(&self) -> LinearFit {
        *self.shared.lock()
    }

    /// Flushes buffered samples, stops the thread, and returns the final
    /// fit.
    pub fn finish(mut self) -> LinearFit {
        self.shutdown();
        *self.shared.lock()
    }

    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        if let Some(sender) = &self.sender {
            let batch = std::mem::take(&mut self.buffer);
            // A closed channel means the worker already exited; samples
            // past that point can be dropped safely.
            let _ = sender.send(Msg::Batch(batch));
        }
    }

    fn shutdown(&mut self) {
        self.flush();
        if let Some(sender) = self.sender.take() {
            let _ = sender.send(Msg::Done);
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for PipelinedRegression {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyclic_trace(pages: u64, rounds: usize) -> impl Iterator<Item = PageId> {
        (0..rounds).flat_map(move |_| (0..pages).map(PageId))
    }

    #[test]
    fn cyclic_scan_learns_proportional_fit() {
        // For a cyclic scan over N pages, every reuse has RD = N-1 and
        // VTD = N-1: slope 1 through that single point cluster is
        // degenerate, so mix two loop lengths.
        let mut s = SamplingRegression::new(SamplerConfig {
            sample_budget: 10_000,
            batch_size: 50,
            pipelined: true,
        });
        for _ in 0..20 {
            for p in cyclic_trace(10, 1) {
                s.observe(p);
            }
            for p in cyclic_trace(30, 1) {
                s.observe(p);
            }
        }
        let fit = s.fit();
        // Distinct-page distance is bounded by VTD, so slope <= 1.
        assert!(fit.slope > 0.0 && fit.slope <= 1.01, "slope {}", fit.slope);
    }

    #[test]
    fn identity_before_first_batch() {
        let mut s = SamplingRegression::new(SamplerConfig {
            sample_budget: 100,
            batch_size: 50,
            pipelined: true,
        });
        for p in cyclic_trace(5, 2).take(8) {
            s.observe(p);
        }
        assert_eq!(s.fit(), LinearFit::identity());
    }

    #[test]
    fn non_pipelined_withholds_intermediate_fits() {
        let config = SamplerConfig {
            sample_budget: 100,
            batch_size: 10,
            pipelined: false,
        };
        let mut s = SamplingRegression::new(config);
        let mut fed = 0;
        for round in 0..40 {
            for p in cyclic_trace(if round % 2 == 0 { 5 } else { 13 }, 1) {
                s.observe(p);
                fed += 1;
                if !s.is_complete() {
                    assert_eq!(
                        s.fit(),
                        LinearFit::identity(),
                        "fit leaked before budget at {fed} observations"
                    );
                }
            }
        }
        assert!(s.is_complete());
        assert_ne!(s.fit(), LinearFit::identity(), "final fit must publish");
    }

    #[test]
    fn budget_stops_collection() {
        let mut s = SamplingRegression::new(SamplerConfig {
            sample_budget: 10,
            batch_size: 2,
            pipelined: true,
        });
        for p in cyclic_trace(4, 100) {
            s.observe(p);
        }
        assert_eq!(s.pairs(), 10);
        assert!(s.is_complete());
    }

    #[test]
    fn pipelined_matches_synchronous_final_fit() {
        let config = SamplerConfig {
            sample_budget: 5_000,
            batch_size: 100,
            pipelined: true,
        };
        let mut sync = SamplingRegression::new(config);
        let mut piped = PipelinedRegression::spawn(config);
        for _ in 0..30 {
            for p in cyclic_trace(7, 1).chain(cyclic_trace(23, 1)) {
                sync.observe(p);
                piped.observe(p);
            }
        }
        let a = sync.fit();
        let b = piped.finish();
        assert!((a.slope - b.slope).abs() < 1e-12);
        assert!((a.intercept - b.intercept).abs() < 1e-9);
    }

    #[test]
    fn pipelined_publishes_intermediate_fits() {
        let mut piped = PipelinedRegression::spawn(SamplerConfig {
            sample_budget: 100_000,
            batch_size: 10,
            pipelined: true,
        });
        for _ in 0..200 {
            for p in cyclic_trace(5, 1).chain(cyclic_trace(17, 1)) {
                piped.observe(p);
            }
        }
        // Give the worker a moment; then an intermediate fit should exist.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let fit = piped.current_fit();
            if fit != LinearFit::identity() || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::yield_now();
        }
        let final_fit = piped.finish();
        assert!(final_fit.slope > 0.0);
    }

    #[test]
    fn drop_without_finish_is_clean() {
        let mut piped = PipelinedRegression::spawn(SamplerConfig {
            sample_budget: 1_000,
            batch_size: 10,
            pipelined: true,
        });
        for p in cyclic_trace(5, 3) {
            piped.observe(p);
        }
        drop(piped); // must join the worker without hanging or panicking
    }
}
