//! Exact reuse-distance measurement (the "tree-based method").
//!
//! The paper's CPU-side regression thread turns sampled VTDs into true
//! reuse distances "employing a tree-based method" (§2.1.3, citing Olken's
//! algorithm). The classic structure is a balanced tree over access
//! positions holding one mark per *currently most recent* page position;
//! the number of marks after a page's previous position is exactly the
//! the number of distinct pages touched since — its reuse distance. The
//! marks live in a flat bitset (one bit per access position) and a
//! Fenwick (binary-indexed) tree runs over *64-position blocks* of that
//! bitset: a prefix count is a Fenwick prefix over whole blocks plus one
//! masked popcount, and set/clear touch `O(log(n/64))` block counters.
//! Compared to a Fenwick over raw positions this shrinks the tree (and
//! its cache footprint) 64x while producing bit-identical distances.

use gmt_mem::PageId;

/// A reuse distance: finite, or a cold (first-touch) access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distance {
    /// The page was accessed before; the payload is the distance.
    Finite(u64),
    /// First access to the page.
    Cold,
}

impl Distance {
    /// The finite distance, if any.
    pub fn finite(self) -> Option<u64> {
        match self {
            Distance::Finite(d) => Some(d),
            Distance::Cold => None,
        }
    }
}

/// Both distance flavours for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessDistances {
    /// Unique (Olken/Mattson) reuse distance: distinct pages since the
    /// previous access to this page.
    pub rd: Distance,
    /// Virtual-timestamp distance: total (non-unique) accesses since the
    /// previous access to this page — the cheap proxy GMT measures on the
    /// GPU (paper Fig. 3).
    pub vtd: Distance,
}

/// Growable Fenwick tree over 64-position block popcounts.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    /// Extends the tree with a zero entry at position `len+1` (1-based).
    fn grow(&mut self) {
        // Appending to a Fenwick tree: new node at index i (1-based)
        // aggregates the range (i - lowbit(i), i]; all those positions are
        // existing, so its initial value is the sum of that range minus
        // the prefix before it.
        let i = self.tree.len() + 1;
        let lowbit = i & i.wrapping_neg();
        let value = if lowbit == 1 {
            0
        } else {
            self.prefix(i - 1) - self.prefix(i - lowbit)
        };
        self.tree.push(value);
    }

    /// Adds `delta` at 1-based position `i`.
    fn add(&mut self, mut i: usize, delta: i32) {
        while i <= self.tree.len() {
            let v = self.tree[i - 1] as i64 + delta as i64;
            debug_assert!(v >= 0);
            self.tree[i - 1] = v as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `1..=i`.
    fn prefix(&self, mut i: usize) -> u32 {
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i - 1];
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// Streaming exact reuse-distance tracker.
///
/// # Examples
///
/// ```
/// use gmt_mem::PageId;
/// use gmt_reuse::{Distance, ReuseTracker};
///
/// let mut t = ReuseTracker::new();
/// assert_eq!(t.record(PageId(0)).rd, Distance::Cold);
/// t.record(PageId(1));
/// t.record(PageId(1));
/// // 0 again: pages {1} touched since -> RD 1, but 2 accesses -> VTD 2.
/// let d = t.record(PageId(0));
/// assert_eq!(d.rd, Distance::Finite(1));
/// assert_eq!(d.vtd, Distance::Finite(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseTracker {
    /// One mark bit per 1-based access position (bit `pos - 1`): set iff
    /// that position is the *most recent* access of some page.
    bits: Vec<u64>,
    /// Fenwick over the popcount of each 64-bit block of `bits`.
    blocks: Fenwick,
    /// Most recent 1-based position per page (0 = never seen); dense
    /// grow-on-demand table — page ids are dense from zero.
    last_pos: Vec<usize>,
    /// Number of distinct pages seen (non-zero `last_pos` entries).
    distinct: usize,
    position: usize,
}

impl ReuseTracker {
    /// Marks set in positions `1..=i`: whole blocks via the Fenwick,
    /// the straddling block via one masked popcount.
    fn prefix(&self, i: usize) -> u32 {
        let full = i / 64;
        let rem = i % 64;
        let mut sum = self.blocks.prefix(full);
        if rem != 0 {
            sum += (self.bits[full] & ((1u64 << rem) - 1)).count_ones();
        }
        sum
    }

    fn set_mark(&mut self, pos: usize) {
        let i = pos - 1;
        self.bits[i / 64] |= 1u64 << (i % 64);
        self.blocks.add(i / 64 + 1, 1);
    }

    fn clear_mark(&mut self, pos: usize) {
        let i = pos - 1;
        debug_assert!(self.bits[i / 64] & (1u64 << (i % 64)) != 0);
        self.bits[i / 64] &= !(1u64 << (i % 64));
        self.blocks.add(i / 64 + 1, -1);
    }
}

impl ReuseTracker {
    /// Creates an empty tracker.
    pub fn new() -> ReuseTracker {
        ReuseTracker::default()
    }

    /// Number of accesses recorded so far.
    pub fn accesses(&self) -> u64 {
        self.position as u64
    }

    /// Number of distinct pages seen so far.
    pub fn distinct_pages(&self) -> usize {
        self.distinct
    }

    /// The current stream position (1-based index of the last access).
    pub fn position(&self) -> u64 {
        self.position as u64
    }

    /// Number of *distinct* pages accessed strictly after stream position
    /// `pos` (as returned by [`ReuseTracker::position`]).
    ///
    /// This is the measurement behind the paper's Remaining Reuse
    /// Distance: snapshot the position when a page is evicted from
    /// Tier-1, and query when the page is next accessed.
    ///
    /// # Examples
    ///
    /// ```
    /// use gmt_mem::PageId;
    /// use gmt_reuse::ReuseTracker;
    ///
    /// let mut t = ReuseTracker::new();
    /// t.record(PageId(0));
    /// let snapshot = t.position();
    /// t.record(PageId(1));
    /// t.record(PageId(1));
    /// t.record(PageId(2));
    /// assert_eq!(t.distinct_since(snapshot), 2);
    /// ```
    pub fn distinct_since(&self, pos: u64) -> u64 {
        let now = self.position;
        let pos = pos as usize;
        debug_assert!(pos <= now);
        (self.prefix(now) - self.prefix(pos.min(now))) as u64
    }

    /// Records an access to `page`, returning its reuse distances.
    pub fn record(&mut self, page: PageId) -> AccessDistances {
        self.position += 1;
        let pos = self.position; // 1-based
        if (pos - 1) / 64 == self.bits.len() {
            // A new 64-position block comes into range.
            self.bits.push(0);
            self.blocks.grow();
        }
        let idx = page.0 as usize;
        if idx >= self.last_pos.len() {
            self.last_pos.resize(idx + 1, 0);
        }
        let prev = self.last_pos[idx];
        let distances = if prev != 0 {
            // Marks strictly after prev (and before pos) = distinct
            // pages accessed since.
            let rd = self.prefix(pos - 1) - self.prefix(prev);
            self.clear_mark(prev);
            AccessDistances {
                rd: Distance::Finite(rd as u64),
                vtd: Distance::Finite((pos - prev - 1) as u64),
            }
        } else {
            self.distinct += 1;
            AccessDistances {
                rd: Distance::Cold,
                vtd: Distance::Cold,
            }
        };
        self.set_mark(pos);
        self.last_pos[idx] = pos;
        distances
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force unique reuse distance for cross-checking.
    fn brute_force(stream: &[u64]) -> Vec<Option<(u64, u64)>> {
        let mut out = Vec::new();
        for (i, &p) in stream.iter().enumerate() {
            let prev = stream[..i].iter().rposition(|&q| q == p);
            out.push(prev.map(|l| {
                let mut distinct: Vec<u64> = stream[l + 1..i].to_vec();
                distinct.sort_unstable();
                distinct.dedup();
                (distinct.len() as u64, (i - l - 1) as u64)
            }));
        }
        out
    }

    fn check(stream: &[u64]) {
        let expected = brute_force(stream);
        let mut t = ReuseTracker::new();
        for (i, &p) in stream.iter().enumerate() {
            let d = t.record(PageId(p));
            match expected[i] {
                None => assert_eq!(d.rd, Distance::Cold, "access {i}"),
                Some((rd, vtd)) => {
                    assert_eq!(d.rd, Distance::Finite(rd), "rd at access {i} of {stream:?}");
                    assert_eq!(d.vtd, Distance::Finite(vtd), "vtd at access {i}");
                }
            }
        }
    }

    #[test]
    fn textbook_sequence() {
        // a b c b a: RD(a at end) = 2 distinct (b, c); VTD = 3.
        check(&[0, 1, 2, 1, 0]);
    }

    #[test]
    fn immediate_reuse_is_zero() {
        let mut t = ReuseTracker::new();
        t.record(PageId(7));
        let d = t.record(PageId(7));
        assert_eq!(d.rd, Distance::Finite(0));
        assert_eq!(d.vtd, Distance::Finite(0));
    }

    #[test]
    fn cyclic_scan_distances_equal_working_set_minus_one() {
        let n = 50u64;
        let stream: Vec<u64> = (0..n).chain(0..n).collect();
        let mut t = ReuseTracker::new();
        for &p in &stream[..n as usize] {
            assert_eq!(t.record(PageId(p)).rd, Distance::Cold);
        }
        for &p in &stream[n as usize..] {
            assert_eq!(t.record(PageId(p)).rd, Distance::Finite(n - 1));
        }
    }

    #[test]
    fn matches_brute_force_on_random_streams() {
        use rand::Rng;
        let mut rng = gmt_sim::rng::seeded(11);
        for _ in 0..20 {
            let stream: Vec<u64> = (0..200).map(|_| rng.gen_range(0..17)).collect();
            check(&stream);
        }
    }

    #[test]
    fn counters() {
        let mut t = ReuseTracker::new();
        for p in [0u64, 1, 0, 2] {
            t.record(PageId(p));
        }
        assert_eq!(t.accesses(), 4);
        assert_eq!(t.distinct_pages(), 3);
    }

    #[test]
    fn distance_finite_accessor() {
        assert_eq!(Distance::Finite(4).finite(), Some(4));
        assert_eq!(Distance::Cold.finite(), None);
    }
}
