//! Model-based property tests: the predictor and the reuse tree checked
//! against straightforward reference implementations.

use gmt_mem::{PageId, Tier};
use gmt_reuse::{MarkovPredictor, PageHistory, ReuseTracker};
use proptest::prelude::*;

fn arb_tier() -> impl Strategy<Value = Tier> {
    (0usize..3).prop_map(Tier::from_index)
}

proptest! {
    #[test]
    fn markov_matches_reference_counts(
        transitions in proptest::collection::vec((arb_tier(), arb_tier()), 0..200),
    ) {
        let mut predictor = MarkovPredictor::new();
        let mut reference = std::collections::HashMap::<(Tier, Tier), u64>::new();
        for &(from, to) in &transitions {
            predictor.reinforce(from, to);
            *reference.entry((from, to)).or_default() += 1;
        }
        for from in Tier::ALL {
            for to in Tier::ALL {
                prop_assert_eq!(
                    predictor.weight(from, to),
                    reference.get(&(from, to)).copied().unwrap_or(0)
                );
            }
        }
        // The prediction is always an argmax of the reference row (or the
        // state itself when the row is empty).
        for from in Tier::ALL {
            let predicted = predictor.predict(from);
            let row_max = Tier::ALL
                .iter()
                .map(|&t| reference.get(&(from, t)).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            if row_max == 0 {
                prop_assert_eq!(predicted, from);
            } else {
                prop_assert_eq!(
                    reference.get(&(from, predicted)).copied().unwrap_or(0),
                    row_max,
                    "prediction must carry the row's maximum weight"
                );
            }
        }
    }

    #[test]
    fn history_trains_exactly_consecutive_pairs(
        outcomes in proptest::collection::vec(arb_tier(), 0..100),
    ) {
        let mut predictor = MarkovPredictor::new();
        let mut history = PageHistory::default();
        for &t in &outcomes {
            history.observe(t, &mut predictor);
        }
        let expected_total = outcomes.len().saturating_sub(1) as u64;
        prop_assert_eq!(predictor.total(), expected_total);
        prop_assert_eq!(history.last(), outcomes.last().copied());
        if outcomes.len() >= 2 {
            prop_assert_eq!(
                history.second_last(),
                Some(outcomes[outcomes.len() - 2])
            );
        }
    }

    #[test]
    fn distinct_since_matches_reference(
        stream in proptest::collection::vec(0u64..20, 1..200),
        snapshot_at in any::<prop::sample::Index>(),
    ) {
        let mut tracker = ReuseTracker::new();
        let cut = snapshot_at.index(stream.len());
        for &p in &stream[..cut] {
            tracker.record(PageId(p));
        }
        let snapshot = tracker.position();
        for &p in &stream[cut..] {
            tracker.record(PageId(p));
        }
        let mut reference: Vec<u64> = stream[cut..].to_vec();
        reference.sort_unstable();
        reference.dedup();
        prop_assert_eq!(tracker.distinct_since(snapshot), reference.len() as u64);
    }
}
